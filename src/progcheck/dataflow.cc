#include "progcheck/dataflow.hh"

#include <algorithm>
#include <array>

namespace pgss::progcheck
{

namespace
{

using isa::Instruction;
using isa::Opcode;

// ---------------------------------------------------------- const-prop

/** One register's lattice value. */
struct Lat
{
    enum Kind : std::uint8_t { Top, Const, Bottom };
    Kind kind = Top;
    std::uint64_t v = 0;

    static Lat top() { return {}; }
    static Lat cst(std::uint64_t v) { return {Const, v}; }
    static Lat bot() { return {Bottom, 0}; }

    bool operator==(const Lat &o) const
    {
        return kind == o.kind && (kind != Const || v == o.v);
    }
};

Lat
merge(const Lat &a, const Lat &b)
{
    if (a.kind == Lat::Top)
        return b;
    if (b.kind == Lat::Top)
        return a;
    if (a.kind == Lat::Const && b.kind == Lat::Const && a.v == b.v)
        return a;
    return Lat::bot();
}

using RegState = std::array<Lat, isa::num_regs>;

bool
mergeInto(RegState &into, const RegState &from)
{
    bool changed = false;
    for (int r = 0; r < isa::num_regs; ++r) {
        const Lat m = merge(into[r], from[r]);
        if (!(m == into[r])) {
            into[r] = m;
            changed = true;
        }
    }
    return changed;
}

/** Apply @p inst to @p s (registers only; memory reads go Bottom). */
void
transfer(const Instruction &inst, RegState &s)
{
    const auto set = [&](Lat v) {
        if (inst.rd != isa::reg_zero)
            s[inst.rd] = v;
    };
    const Lat a = s[inst.rs1];
    const Lat b = s[inst.rs2];
    const bool ab = a.kind == Lat::Const && b.kind == Lat::Const;
    const bool ai = a.kind == Lat::Const;
    const auto imm = static_cast<std::uint64_t>(inst.imm);

    switch (inst.op) {
      case Opcode::Add:
        set(ab ? Lat::cst(a.v + b.v) : Lat::bot());
        break;
      case Opcode::Sub:
        set(ab ? Lat::cst(a.v - b.v) : Lat::bot());
        break;
      case Opcode::And:
        set(ab ? Lat::cst(a.v & b.v) : Lat::bot());
        break;
      case Opcode::Or:
        set(ab ? Lat::cst(a.v | b.v) : Lat::bot());
        break;
      case Opcode::Xor:
        set(ab ? Lat::cst(a.v ^ b.v) : Lat::bot());
        break;
      case Opcode::Sll:
        set(ab ? Lat::cst(a.v << (b.v & 63)) : Lat::bot());
        break;
      case Opcode::Srl:
        set(ab ? Lat::cst(a.v >> (b.v & 63)) : Lat::bot());
        break;
      case Opcode::Sra:
        set(ab ? Lat::cst(static_cast<std::uint64_t>(
                     static_cast<std::int64_t>(a.v) >> (b.v & 63)))
               : Lat::bot());
        break;
      case Opcode::Slt:
        set(ab ? Lat::cst(static_cast<std::int64_t>(a.v) <
                                  static_cast<std::int64_t>(b.v)
                              ? 1
                              : 0)
               : Lat::bot());
        break;
      case Opcode::Addi:
        set(ai ? Lat::cst(a.v + imm) : Lat::bot());
        break;
      case Opcode::Andi:
        set(ai ? Lat::cst(a.v & imm) : Lat::bot());
        break;
      case Opcode::Ori:
        set(ai ? Lat::cst(a.v | imm) : Lat::bot());
        break;
      case Opcode::Xori:
        set(ai ? Lat::cst(a.v ^ imm) : Lat::bot());
        break;
      case Opcode::Slti:
        set(ai ? Lat::cst(static_cast<std::int64_t>(a.v) < inst.imm
                              ? 1
                              : 0)
               : Lat::bot());
        break;
      case Opcode::Lui:
        set(Lat::cst(imm));
        break;
      default:
        // Mul/Div/FP results are never used as static addresses and
        // loads, calls, and returns are data-dependent: all Bottom.
        if (inst.info().writes_rd)
            set(Lat::bot());
        break;
    }
}

// ------------------------------------------------- per-inst effects

/** Register slots @p inst reads (r0 excluded: always defined). */
void
regUses(const Instruction &inst, int out[2])
{
    const isa::OpInfo &info = inst.info();
    out[0] = info.reads_rs1 && inst.rs1 != isa::reg_zero ? inst.rs1
                                                         : -1;
    out[1] = info.reads_rs2 && inst.rs2 != isa::reg_zero ? inst.rs2
                                                         : -1;
}

/** Register slot @p inst defines, or -1. */
int
regDef(const Instruction &inst)
{
    return inst.info().writes_rd && inst.rd != isa::reg_zero ? inst.rd
                                                             : -1;
}

} // anonymous namespace

const StaticAccess *
ConstProp::accessAt(std::uint32_t pc) const
{
    const auto it = std::lower_bound(
        accesses.begin(), accesses.end(), pc,
        [](const StaticAccess &a, std::uint32_t p) { return a.pc < p; });
    return it != accesses.end() && it->pc == pc ? &*it : nullptr;
}

ConstProp
runConstProp(const Cfg &cfg)
{
    const isa::Program &prog = *cfg.prog;
    const std::size_t nb = cfg.blocks.size();

    // Block-entry states; the program entry starts all-zero (the
    // architectural register reset).
    std::vector<RegState> in(nb);
    std::vector<bool> in_valid(nb, false);
    RegState entry_state;
    entry_state.fill(Lat::cst(0));
    const std::uint32_t entry = cfg.entryBlock();
    in[entry] = entry_state;
    in_valid[entry] = true;

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 0; b < nb; ++b) {
            if (!cfg.reachable[b] || !in_valid[b])
                continue;
            RegState s = in[b];
            for (std::uint32_t pc = cfg.blocks[b].first;
                 pc <= cfg.blocks[b].last; ++pc)
                transfer(prog.code[pc], s);
            s[isa::reg_zero] = Lat::cst(0);
            for (std::uint32_t succ : cfg.blocks[b].succs) {
                if (!in_valid[succ]) {
                    in[succ] = s;
                    in_valid[succ] = true;
                    changed = true;
                } else if (mergeInto(in[succ], s)) {
                    changed = true;
                }
            }
        }
    }

    ConstProp cp;
    for (std::size_t b = 0; b < nb; ++b) {
        if (!cfg.reachable[b] || !in_valid[b])
            continue;
        RegState s = in[b];
        for (std::uint32_t pc = cfg.blocks[b].first;
             pc <= cfg.blocks[b].last; ++pc) {
            const Instruction &inst = prog.code[pc];
            if (isa::readsMemory(inst) || isa::writesMemory(inst)) {
                const Lat base = s[inst.rs1];
                if (base.kind == Lat::Const) {
                    cp.accesses.push_back(
                        {pc,
                         base.v + static_cast<std::uint64_t>(inst.imm),
                         isa::writesMemory(inst)});
                }
            }
            transfer(inst, s);
            s[isa::reg_zero] = Lat::cst(0);
        }
    }
    std::sort(cp.accesses.begin(), cp.accesses.end(),
              [](const StaticAccess &a, const StaticAccess &b) {
                  return a.pc < b.pc;
              });
    return cp;
}

int
SlotMap::slotOf(std::uint64_t addr) const
{
    const auto it = std::lower_bound(addrs.begin(), addrs.end(), addr);
    if (it == addrs.end() || *it != addr)
        return -1;
    return 32 + static_cast<int>(it - addrs.begin());
}

SlotMap
SlotMap::build(const ConstProp &cp)
{
    SlotMap map;
    for (const StaticAccess &a : cp.accesses)
        map.addrs.push_back(a.addr & ~7ull);
    std::sort(map.addrs.begin(), map.addrs.end());
    map.addrs.erase(std::unique(map.addrs.begin(), map.addrs.end()),
                    map.addrs.end());
    return map;
}

Liveness
computeLiveness(const Cfg &cfg, const ConstProp &cp)
{
    const isa::Program &prog = *cfg.prog;
    const std::size_t nb = cfg.blocks.size();

    Liveness lv;
    lv.slots = SlotMap::build(cp);
    const std::size_t ns = lv.slots.numSlots();

    // Block summaries: use (read before any def), def.
    std::vector<BitSet> use(nb, BitSet(ns));
    std::vector<BitSet> def(nb, BitSet(ns));
    for (std::size_t b = 0; b < nb; ++b) {
        if (!cfg.reachable[b])
            continue;
        for (std::uint32_t pc = cfg.blocks[b].first;
             pc <= cfg.blocks[b].last; ++pc) {
            const Instruction &inst = prog.code[pc];
            int reads[2];
            regUses(inst, reads);
            for (int r : reads) {
                if (r >= 0 && !def[b].test(static_cast<std::size_t>(r)))
                    use[b].set(static_cast<std::size_t>(r));
            }
            if (isa::readsMemory(inst)) {
                const StaticAccess *acc = cp.accessAt(pc);
                const int slot =
                    acc ? lv.slots.slotOf(acc->addr & ~7ull) : -1;
                if (slot >= 0) {
                    if (!def[b].test(static_cast<std::size_t>(slot)))
                        use[b].set(static_cast<std::size_t>(slot));
                } else {
                    // Dynamic load: may observe any static word.
                    for (std::size_t s = 32; s < ns; ++s) {
                        if (!def[b].test(s))
                            use[b].set(s);
                    }
                }
            }
            if (isa::writesMemory(inst)) {
                const StaticAccess *acc = cp.accessAt(pc);
                const int slot =
                    acc ? lv.slots.slotOf(acc->addr & ~7ull) : -1;
                if (slot >= 0)
                    def[b].set(static_cast<std::size_t>(slot));
            }
            const int d = regDef(inst);
            if (d >= 0)
                def[b].set(static_cast<std::size_t>(d));
        }
    }

    lv.live_out.assign(nb, BitSet(ns));
    std::vector<BitSet> live_in(nb, BitSet(ns));
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = nb; i-- > 0;) {
            if (!cfg.reachable[i])
                continue;
            for (std::uint32_t s : cfg.blocks[i].succs)
                changed |= lv.live_out[i].orWith(live_in[s]);
            // live_in = use | (live_out - def)
            BitSet in = lv.live_out[i];
            for (std::size_t slot = 0; slot < ns; ++slot) {
                if (def[i].test(slot))
                    in.clear(slot);
            }
            in.orWith(use[i]);
            changed |= live_in[i].orWith(in);
        }
    }
    return lv;
}

MayUninit
computeMayUninit(const Cfg &cfg)
{
    const isa::Program &prog = *cfg.prog;
    const std::size_t nb = cfg.blocks.size();
    constexpr std::size_t ns = 32;

    // def summary per block.
    std::vector<BitSet> def(nb, BitSet(ns));
    for (std::size_t b = 0; b < nb; ++b) {
        for (std::uint32_t pc = cfg.blocks[b].first;
             pc <= cfg.blocks[b].last; ++pc) {
            const int d = regDef(prog.code[pc]);
            if (d >= 0)
                def[b].set(static_cast<std::size_t>(d));
        }
    }

    MayUninit mu;
    mu.in.assign(nb, BitSet(ns));
    const std::uint32_t entry = cfg.entryBlock();
    mu.in[entry].setAll();
    mu.in[entry].clear(isa::reg_zero);

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 0; b < nb; ++b) {
            if (!cfg.reachable[b])
                continue;
            BitSet out = mu.in[b];
            for (std::size_t slot = 0; slot < ns; ++slot) {
                if (def[b].test(slot))
                    out.clear(slot);
            }
            for (std::uint32_t s : cfg.blocks[b].succs)
                changed |= mu.in[s].orWith(out);
        }
    }
    return mu;
}

} // namespace pgss::progcheck

#include "progcheck/cfg.hh"

#include <algorithm>
#include <map>

#include "util/logging.hh"

namespace pgss::progcheck
{

namespace
{

using isa::CtrlKind;
using isa::Instruction;

/** In-range static target of @p inst, or npos. */
std::uint32_t
staticTarget(const Instruction &inst, std::size_t code_size)
{
    if (!isa::hasStaticTarget(inst))
        return npos;
    if (inst.imm < 0 ||
        static_cast<std::uint64_t>(inst.imm) >= code_size)
        return npos;
    return static_cast<std::uint32_t>(inst.imm);
}

/** Global successor blocks of @p b (call edges into callees). */
std::vector<std::uint32_t>
globalSuccs(const Cfg &cfg, const Block &b)
{
    const isa::Program &prog = *cfg.prog;
    const Instruction &tail = prog.code[b.last];
    const std::size_t n = prog.code.size();
    std::vector<std::uint32_t> out;

    const auto push_pc = [&](std::uint64_t pc) {
        if (pc < n)
            out.push_back(cfg.block_of[pc]);
    };

    switch (isa::ctrlKind(tail)) {
      case CtrlKind::None:
        push_pc(b.last + 1);
        break;
      case CtrlKind::CondBranch: {
        const std::uint32_t t = staticTarget(tail, n);
        if (t != npos)
            push_pc(t);
        push_pc(b.last + 1);
        break;
      }
      case CtrlKind::DirectJump: {
        const std::uint32_t t = staticTarget(tail, n);
        if (t != npos)
            push_pc(t);
        break;
      }
      case CtrlKind::IndirectJump:
        if (const auto *targets = cfg.indirectTargets(b.last)) {
            for (std::uint32_t t : *targets)
                push_pc(t);
        }
        break;
      case CtrlKind::Halt:
        break;
    }

    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

void
computeReachability(Cfg &cfg)
{
    cfg.reachable.assign(cfg.blocks.size(), false);
    std::vector<std::uint32_t> stack = {cfg.entryBlock()};
    while (!stack.empty()) {
        const std::uint32_t b = stack.back();
        stack.pop_back();
        if (cfg.reachable[b])
            continue;
        cfg.reachable[b] = true;
        for (std::uint32_t s : cfg.blocks[b].succs) {
            if (!cfg.reachable[s])
                stack.push_back(s);
        }
    }
}

/** Iterative dominator computation (Cooper, Harvey & Kennedy). */
void
computeDominators(Cfg &cfg)
{
    const std::size_t nb = cfg.blocks.size();
    cfg.idom.assign(nb, npos);

    // Reverse post-order over reachable blocks.
    std::vector<std::uint32_t> rpo;
    std::vector<std::uint32_t> rpo_index(nb, npos);
    std::vector<std::uint8_t> state(nb, 0);
    std::vector<std::pair<std::uint32_t, std::size_t>> stack;
    stack.emplace_back(cfg.entryBlock(), 0);
    state[cfg.entryBlock()] = 1;
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        const auto &succs = cfg.blocks[b].succs;
        if (next < succs.size()) {
            const std::uint32_t s = succs[next++];
            if (state[s] == 0) {
                state[s] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            rpo.push_back(b);
            stack.pop_back();
        }
    }
    std::reverse(rpo.begin(), rpo.end());
    for (std::size_t i = 0; i < rpo.size(); ++i)
        rpo_index[rpo[i]] = static_cast<std::uint32_t>(i);

    const auto intersect = [&](std::uint32_t a, std::uint32_t b) {
        while (a != b) {
            while (rpo_index[a] > rpo_index[b])
                a = cfg.idom[a];
            while (rpo_index[b] > rpo_index[a])
                b = cfg.idom[b];
        }
        return a;
    };

    const std::uint32_t entry = cfg.entryBlock();
    cfg.idom[entry] = entry;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::uint32_t b : rpo) {
            if (b == entry)
                continue;
            std::uint32_t new_idom = npos;
            for (std::uint32_t p : cfg.blocks[b].preds) {
                if (cfg.idom[p] == npos)
                    continue; // not yet processed / unreachable
                new_idom = new_idom == npos ? p
                                            : intersect(new_idom, p);
            }
            if (new_idom != npos && cfg.idom[b] != new_idom) {
                cfg.idom[b] = new_idom;
                changed = true;
            }
        }
    }
}

/**
 * Intraprocedural successor blocks: calls step to their continuation,
 * returns and halts terminate, computed jumps follow declared targets.
 */
std::vector<std::uint32_t>
intraSuccs(const Cfg &cfg, const Block &b)
{
    const isa::Program &prog = *cfg.prog;
    const Instruction &tail = prog.code[b.last];
    const std::size_t n = prog.code.size();

    if (isa::isCall(tail)) {
        if (b.last + 1 < n)
            return {cfg.block_of[b.last + 1]};
        return {};
    }
    if (isa::isReturn(tail, cfg.link_reg))
        return {};
    return globalSuccs(cfg, b);
}

void
partitionProcedures(Cfg &cfg)
{
    const isa::Program &prog = *cfg.prog;
    const std::size_t n = prog.code.size();

    // Procedure entries: the program entry first, then call targets.
    std::vector<std::uint32_t> entries = {
        static_cast<std::uint32_t>(prog.entry)};
    for (std::size_t pc = 0; pc < n; ++pc) {
        const Instruction &inst = prog.code[pc];
        if (!isa::isCall(inst))
            continue;
        const std::uint32_t t = staticTarget(inst, n);
        if (t != npos)
            entries.push_back(t);
    }
    std::sort(entries.begin() + 1, entries.end());
    entries.erase(std::unique(entries.begin() + 1, entries.end()),
                  entries.end());
    // Drop a call target that aliases the program entry.
    entries.erase(std::remove(entries.begin() + 1, entries.end(),
                              entries.front()),
                  entries.end());

    cfg.proc_of.assign(cfg.blocks.size(), npos);
    for (std::uint32_t entry_pc : entries) {
        Procedure proc;
        proc.entry_pc = entry_pc;
        proc.entry_block = cfg.block_of[entry_pc];
        proc.is_program_entry = entry_pc == prog.entry;
        cfg.procs.push_back(std::move(proc));
    }

    // Entry blocks claimed up front so walks detect crossings.
    std::map<std::uint32_t, std::uint32_t> entry_block_proc;
    for (std::size_t p = 0; p < cfg.procs.size(); ++p)
        entry_block_proc[cfg.procs[p].entry_block] =
            static_cast<std::uint32_t>(p);

    for (std::size_t p = 0; p < cfg.procs.size(); ++p) {
        Procedure &proc = cfg.procs[p];
        std::vector<std::uint32_t> stack = {proc.entry_block};
        std::vector<bool> visited(cfg.blocks.size(), false);
        while (!stack.empty()) {
            const std::uint32_t b = stack.back();
            stack.pop_back();
            if (visited[b])
                continue;
            visited[b] = true;
            proc.blocks.push_back(b);
            if (cfg.proc_of[b] == npos)
                cfg.proc_of[b] = static_cast<std::uint32_t>(p);

            const Block &block = cfg.blocks[b];
            const Instruction &tail = prog.code[block.last];
            if (isa::isCall(tail))
                proc.calls.push_back(block.last);
            else if (isa::isReturn(tail, cfg.link_reg))
                proc.returns.push_back(block.last);
            else if (isa::ctrlKind(tail) == CtrlKind::Halt)
                proc.halts.push_back(block.last);

            for (std::uint32_t s : intraSuccs(cfg, block)) {
                if (visited[s])
                    continue;
                // Crossing into another procedure's entry is an
                // escape, not membership.
                const auto it = entry_block_proc.find(s);
                if (it != entry_block_proc.end() && it->second != p) {
                    proc.escapes.push_back(block.last);
                    continue;
                }
                stack.push_back(s);
            }
        }
        std::sort(proc.blocks.begin(), proc.blocks.end());
        std::sort(proc.calls.begin(), proc.calls.end());
        std::sort(proc.returns.begin(), proc.returns.end());
        std::sort(proc.escapes.begin(), proc.escapes.end());
        proc.escapes.erase(
            std::unique(proc.escapes.begin(), proc.escapes.end()),
            proc.escapes.end());
    }
}

} // anonymous namespace

std::uint32_t
Cfg::entryBlock() const
{
    return block_of[prog->entry];
}

const std::vector<std::uint32_t> *
Cfg::indirectTargets(std::uint32_t pc) const
{
    for (const isa::IndirectTargetSet &set : prog->indirect_targets) {
        if (set.at == pc)
            return &set.targets;
    }
    return nullptr;
}

bool
Cfg::dominates(std::uint32_t a, std::uint32_t b) const
{
    if (idom[a] == npos || idom[b] == npos)
        return false;
    const std::uint32_t entry = block_of[prog->entry];
    while (true) {
        if (b == a)
            return true;
        if (b == entry)
            return false;
        b = idom[b];
    }
}

Cfg
buildCfg(const isa::Program &prog, std::uint8_t link_reg)
{
    util::panicIf(prog.code.empty(), "buildCfg: empty program");
    util::panicIf(prog.entry >= prog.code.size(),
                  "buildCfg: entry out of range");

    Cfg cfg;
    cfg.prog = &prog;
    cfg.link_reg = link_reg;

    const std::size_t n = prog.code.size();
    std::vector<bool> leader(n, false);
    leader[0] = true;
    leader[prog.entry] = true;
    for (std::size_t pc = 0; pc < n; ++pc) {
        const Instruction &inst = prog.code[pc];
        if (isa::ctrlKind(inst) != CtrlKind::None && pc + 1 < n)
            leader[pc + 1] = true;
        const std::uint32_t t = staticTarget(inst, n);
        if (t != npos)
            leader[t] = true;
    }
    for (const isa::IndirectTargetSet &set : prog.indirect_targets) {
        for (std::uint32_t t : set.targets) {
            if (t < n)
                leader[t] = true;
        }
    }

    cfg.block_of.assign(n, 0);
    for (std::size_t pc = 0; pc < n; ++pc) {
        if (leader[pc]) {
            Block b;
            b.first = static_cast<std::uint32_t>(pc);
            cfg.blocks.push_back(b);
        }
        cfg.block_of[pc] =
            static_cast<std::uint32_t>(cfg.blocks.size() - 1);
        cfg.blocks.back().last = static_cast<std::uint32_t>(pc);
    }

    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        cfg.blocks[b].succs = globalSuccs(cfg, cfg.blocks[b]);
        for (std::uint32_t s : cfg.blocks[b].succs)
            cfg.blocks[s].preds.push_back(
                static_cast<std::uint32_t>(b));
    }

    computeReachability(cfg);
    computeDominators(cfg);
    partitionProcedures(cfg);
    return cfg;
}

} // namespace pgss::progcheck

#include "progcheck/passes.hh"

#include <algorithm>

#include "isa/instruction.hh"

namespace pgss::progcheck
{

namespace
{

using isa::CtrlKind;
using isa::Instruction;
using isa::OpClass;

void
add(Report &report, Check check, Severity severity, std::uint64_t pc,
    std::string message)
{
    if (report.findings.size() >= 100000)
        return; // hard backstop; Options::max_findings trims later
    report.findings.push_back({check, severity, pc, std::move(message)});
}

/** True for plain value-producing ops (dead-store candidates). */
bool
isPureValueOp(const Instruction &inst)
{
    switch (inst.info().op_class) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
      case OpClass::IntDiv:
      case OpClass::FpAdd:
      case OpClass::FpMul:
      case OpClass::FpDiv:
        return true;
      default:
        return false;
    }
}

/** Register slot @p inst defines, or -1 (r0 writes are no-ops). */
int
regDef(const Instruction &inst)
{
    return inst.info().writes_rd && inst.rd != isa::reg_zero ? inst.rd
                                                             : -1;
}

} // anonymous namespace

void
checkStructure(const Cfg &cfg, Report &report)
{
    const isa::Program &prog = *cfg.prog;
    const std::size_t n = prog.code.size();

    for (std::size_t pc = 0; pc < n; ++pc) {
        const Instruction &inst = prog.code[pc];
        if (isa::hasStaticTarget(inst) &&
            (inst.imm < 0 ||
             static_cast<std::uint64_t>(inst.imm) >= n)) {
            add(report, Check::BadTarget, Severity::Error, pc,
                "control-transfer target " + std::to_string(inst.imm) +
                    " is outside the program (size " +
                    std::to_string(n) + ")");
        }
        if (isa::ctrlKind(inst) == CtrlKind::IndirectJump &&
            cfg.indirectTargets(static_cast<std::uint32_t>(pc)) ==
                nullptr) {
            add(report, Check::IndirectNoTargets, Severity::Warning, pc,
                std::string("indirect jump has no declared target "
                            "set; ") +
                    (isa::isReturn(inst, cfg.link_reg)
                         ? "treated as an opaque subroutine return"
                         : "its successors are unknown to every "
                           "analysis"));
        }
    }
    if (isa::fallsThrough(prog.code[n - 1])) {
        add(report, Check::FallsOffEnd, Severity::Error, n - 1,
            "execution can fall through the last instruction ('" +
                isa::disassemble(prog.code[n - 1], n - 1) +
                "') and run off the end of the program");
    }
}

void
checkReachability(const Cfg &cfg, Report &report)
{
    const isa::Program &prog = *cfg.prog;
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (cfg.reachable[b])
            continue;
        const Block &block = cfg.blocks[b];
        std::size_t stores = 0;
        for (std::uint32_t pc = block.first; pc <= block.last; ++pc)
            stores += isa::writesMemory(prog.code[pc]) ? 1 : 0;
        std::string msg = "block [" + std::to_string(block.first) +
                          ".." + std::to_string(block.last) + "] (" +
                          std::to_string(block.size()) +
                          " instruction(s)) can never execute";
        if (stores > 0) {
            msg += "; it contains " + std::to_string(stores) +
                   " dead store(s), first: '" +
                   isa::disassemble(prog.code[block.first],
                                    block.first) +
                   "'";
        }
        add(report, Check::UnreachableCode, Severity::Error,
            block.first, std::move(msg));
    }
}

void
checkDefUse(const Cfg &cfg, const ConstProp &cp, const Liveness &lv,
            const MayUninit &mu, const Options &opt, Report &report)
{
    const isa::Program &prog = *cfg.prog;
    const std::size_t ns = lv.slots.numSlots();

    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (!cfg.reachable[b])
            continue;
        const Block &block = cfg.blocks[b];

        if (opt.check_uninit) {
            BitSet uninit = mu.in[b];
            for (std::uint32_t pc = block.first; pc <= block.last;
                 ++pc) {
                const Instruction &inst = prog.code[pc];
                const isa::OpInfo &info = inst.info();
                const auto flag = [&](std::uint8_t r) {
                    if (r != isa::reg_zero && uninit.test(r)) {
                        add(report, Check::ReadBeforeWrite,
                            Severity::Warning, pc,
                            "r" + std::to_string(r) +
                                " may be read before any write "
                                "reaches it (architecturally zero)");
                    }
                };
                if (info.reads_rs1)
                    flag(inst.rs1);
                if (info.reads_rs2)
                    flag(inst.rs2);
                const int d = regDef(inst);
                if (d >= 0)
                    uninit.clear(static_cast<std::size_t>(d));
            }
        }

        if (opt.check_dead_stores) {
            BitSet live = lv.live_out[b];
            for (std::uint32_t pc = block.last + 1; pc-- > block.first;) {
                const Instruction &inst = prog.code[pc];
                const isa::OpInfo &info = inst.info();
                const int d = regDef(inst);
                if (d >= 0) {
                    if (!live.test(static_cast<std::size_t>(d)) &&
                        isPureValueOp(inst)) {
                        add(report, Check::DeadStoreReg,
                            Severity::Warning, pc,
                            "value written to r" + std::to_string(d) +
                                " is never read before being "
                                "overwritten or dropped");
                    }
                    live.clear(static_cast<std::size_t>(d));
                }
                if (info.reads_rs1 && inst.rs1 != isa::reg_zero)
                    live.set(inst.rs1);
                if (info.reads_rs2 && inst.rs2 != isa::reg_zero)
                    live.set(inst.rs2);
                if (isa::readsMemory(inst)) {
                    const StaticAccess *acc = cp.accessAt(pc);
                    const int slot =
                        acc ? lv.slots.slotOf(acc->addr & ~7ull) : -1;
                    if (slot >= 0) {
                        live.set(static_cast<std::size_t>(slot));
                    } else {
                        for (std::size_t s = 32; s < ns; ++s)
                            live.set(s);
                    }
                }
                if (isa::writesMemory(inst)) {
                    const StaticAccess *acc = cp.accessAt(pc);
                    const int slot =
                        acc ? lv.slots.slotOf(acc->addr & ~7ull) : -1;
                    if (slot >= 0)
                        live.clear(static_cast<std::size_t>(slot));
                }
            }
        }
    }
}

void
checkConvention(const Cfg &cfg, const Options &opt, Report &report)
{
    const isa::Program &prog = *cfg.prog;

    for (const Procedure &proc : cfg.procs) {
        if (proc.is_program_entry)
            continue;
        for (std::uint32_t b : proc.blocks) {
            const Block &block = cfg.blocks[b];
            for (std::uint32_t pc = block.first; pc <= block.last;
                 ++pc) {
                const Instruction &inst = prog.code[pc];
                const int d = regDef(inst);
                if (d < 0)
                    continue;
                if (d >= opt.reserved_first && d <= opt.reserved_last) {
                    add(report, Check::CalleeWritesReserved,
                        Severity::Error, pc,
                        "subroutine entered at " +
                            std::to_string(proc.entry_pc) +
                            " writes driver-reserved r" +
                            std::to_string(d));
                }
                if (d == opt.link_reg &&
                    static_cast<std::uint32_t>(pc) != proc.entry_pc) {
                    add(report, Check::CalleeClobbersLink,
                        Severity::Error, pc,
                        isa::isCall(inst)
                            ? "nested call clobbers the link register "
                              "(no save/restore convention exists)"
                            : "subroutine overwrites the link "
                              "register; its return address is lost");
                }
            }
        }
    }

    // Calls into the middle of another subroutine: walk each entry
    // without stopping at other entries and look for containment.
    const std::size_t n = prog.code.size();
    for (const Procedure &proc : cfg.procs) {
        // Unrestricted intraprocedural reach of this procedure.
        std::vector<bool> seen(cfg.blocks.size(), false);
        std::vector<std::uint32_t> stack = {proc.entry_block};
        while (!stack.empty()) {
            const std::uint32_t b = stack.back();
            stack.pop_back();
            if (seen[b])
                continue;
            seen[b] = true;
            const Block &block = cfg.blocks[b];
            const Instruction &tail = prog.code[block.last];
            if (isa::isReturn(tail, cfg.link_reg))
                continue;
            if (isa::isCall(tail)) {
                if (block.last + 1 < n)
                    stack.push_back(cfg.block_of[block.last + 1]);
                continue;
            }
            for (std::uint32_t s : block.succs)
                stack.push_back(s);
        }
        // A call target that lands strictly inside this procedure's
        // body (reachable from its entry, not the entry itself).
        for (std::size_t pc = 0; pc < n; ++pc) {
            const Instruction &inst = prog.code[pc];
            if (!isa::isCall(inst) || inst.imm < 0 ||
                static_cast<std::uint64_t>(inst.imm) >= n)
                continue;
            const auto target = static_cast<std::uint32_t>(inst.imm);
            if (target == proc.entry_pc)
                continue;
            const std::uint32_t tb = cfg.block_of[target];
            if (seen[tb] && target != cfg.blocks[tb].first) {
                add(report, Check::CallIntoMidProc, Severity::Error, pc,
                    "call target " + std::to_string(target) +
                        " lands inside the body of the subroutine "
                        "entered at " +
                        std::to_string(proc.entry_pc));
            }
        }
    }
}

void
checkMemory(const Cfg &cfg, const ConstProp &cp, const Liveness &lv,
            const Options &opt, Report &report)
{
    const isa::Program &prog = *cfg.prog;

    for (const StaticAccess &acc : cp.accesses) {
        if ((acc.addr & 7) != 0) {
            add(report, Check::MisalignedAccess, Severity::Error,
                acc.pc,
                "static address " + std::to_string(acc.addr) +
                    " is not 8-byte aligned");
        }
        bool inside = false;
        if (prog.segments.empty()) {
            inside = acc.addr + 8 <= prog.data_bytes;
        } else {
            for (const isa::DataSegment &seg : prog.segments) {
                if (acc.addr >= seg.base &&
                    acc.addr + 8 <= seg.base + seg.bytes) {
                    inside = true;
                    break;
                }
            }
        }
        if (!inside) {
            add(report, Check::OutOfSegment, Severity::Error, acc.pc,
                "static address " + std::to_string(acc.addr) +
                    (prog.segments.empty()
                         ? " is outside the data footprint (" +
                               std::to_string(prog.data_bytes) +
                               " bytes)"
                         : " is outside every declared data segment"));
        }
    }

    if (!opt.check_dead_stores)
        return;

    // Memory dead stores: a statically-addressed store whose word is
    // never observed again on any path. (The register walk in
    // checkDefUse already maintains the same bits; this re-walk keeps
    // the memory findings independent of the def-use toggles.)
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (!cfg.reachable[b])
            continue;
        const Block &block = cfg.blocks[b];
        BitSet live = lv.live_out[b];
        const std::size_t ns = lv.slots.numSlots();
        for (std::uint32_t pc = block.last + 1; pc-- > block.first;) {
            const Instruction &inst = prog.code[pc];
            if (isa::writesMemory(inst)) {
                const StaticAccess *acc = cp.accessAt(pc);
                const int slot =
                    acc ? lv.slots.slotOf(acc->addr & ~7ull) : -1;
                if (slot >= 0) {
                    if (!live.test(static_cast<std::size_t>(slot))) {
                        add(report, Check::DeadStoreMem,
                            Severity::Warning, pc,
                            "store to static address " +
                                std::to_string(acc->addr) +
                                " is never observed by any load");
                    }
                    live.clear(static_cast<std::size_t>(slot));
                }
            }
            if (isa::readsMemory(inst)) {
                const StaticAccess *acc = cp.accessAt(pc);
                const int slot =
                    acc ? lv.slots.slotOf(acc->addr & ~7ull) : -1;
                if (slot >= 0) {
                    live.set(static_cast<std::size_t>(slot));
                } else {
                    for (std::size_t s = 32; s < ns; ++s)
                        live.set(s);
                }
            }
        }
    }
}

void
checkRas(const Cfg &cfg, Report &report)
{
    for (const Procedure &proc : cfg.procs) {
        for (std::uint32_t pc : proc.escapes) {
            add(report, Check::FallIntoProc, Severity::Error, pc,
                "control flows from the " +
                    std::string(proc.is_program_entry
                                    ? "program entry"
                                    : "subroutine entered at " +
                                          std::to_string(
                                              proc.entry_pc)) +
                    " into another subroutine without a call");
        }
        if (proc.is_program_entry) {
            for (std::uint32_t pc : proc.returns) {
                add(report, Check::RasUnderflow, Severity::Error, pc,
                    "return executes with an empty return-address "
                    "stack (no call on any path from the entry)");
            }
        } else {
            for (std::uint32_t pc : proc.halts) {
                add(report, Check::RasLeak, Severity::Warning, pc,
                    "halt inside the subroutine entered at " +
                        std::to_string(proc.entry_pc) +
                        " leaves the return-address stack non-empty");
            }
        }
    }

    // Call-graph cycles: RAS balance is proven procedure-by-procedure
    // assuming callees balance, which needs an acyclic call graph.
    const std::size_t np = cfg.procs.size();
    std::vector<std::vector<std::size_t>> callees(np);
    for (std::size_t p = 0; p < np; ++p) {
        for (std::uint32_t call_pc : cfg.procs[p].calls) {
            const Instruction &inst = cfg.prog->code[call_pc];
            for (std::size_t q = 0; q < np; ++q) {
                if (static_cast<std::int64_t>(cfg.procs[q].entry_pc) ==
                    inst.imm)
                    callees[p].push_back(q);
            }
        }
    }
    std::vector<std::uint8_t> state(np, 0); // 0 new, 1 open, 2 done
    std::vector<std::size_t> in_cycle;
    for (std::size_t root = 0; root < np; ++root) {
        if (state[root] != 0)
            continue;
        std::vector<std::pair<std::size_t, std::size_t>> stack;
        stack.emplace_back(root, 0);
        state[root] = 1;
        while (!stack.empty()) {
            auto &[p, next] = stack.back();
            if (next < callees[p].size()) {
                const std::size_t q = callees[p][next++];
                if (state[q] == 1) {
                    in_cycle.push_back(q);
                } else if (state[q] == 0) {
                    state[q] = 1;
                    stack.emplace_back(q, 0);
                }
            } else {
                state[p] = 2;
                stack.pop_back();
            }
        }
    }
    std::sort(in_cycle.begin(), in_cycle.end());
    in_cycle.erase(std::unique(in_cycle.begin(), in_cycle.end()),
                   in_cycle.end());
    for (std::size_t p : in_cycle) {
        add(report, Check::RecursionUnverified, Severity::Warning,
            cfg.procs[p].entry_pc,
            "subroutine participates in a call-graph cycle; RAS "
            "balance cannot be verified statically");
    }
}

} // namespace pgss::progcheck

/**
 * @file
 * Finding vocabulary of the program verifier. Every check reports
 * findings with a stable code (used by tests, the pgss_lint JSON
 * output, and CI gates), a severity, and the instruction index it
 * anchors to. DESIGN.md section 10 documents each code.
 */

#ifndef PGSS_PROGCHECK_FINDING_HH
#define PGSS_PROGCHECK_FINDING_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pgss::progcheck
{

/**
 * Version of the finding-JSON envelope shared by every static
 * analyzer CLI (pgss_lint, pgss_tracecheck):
 *   {"schema": "pgss-findings", "version": N, "tool": ...,
 *    "programs": [<per-program report objects>]}
 * Each program object carries "program", "code_size", "errors",
 * "warnings" and a "findings" array of {"code", "severity", "pc",
 * "message"} objects (tcheck findings add "trace"). pgss_report's
 * `findings` subcommand renders any artifact with this schema.
 *
 * v2: envelope introduced (v1 was pgss_lint's bare report array).
 */
constexpr std::uint32_t findings_schema_version = 2;

/**
 * Wrap pre-rendered per-program report objects (reportJson output)
 * into the shared envelope under @p tool's name.
 */
std::string findingsEnvelope(std::string_view tool,
                             const std::vector<std::string> &programs);

/** How bad a finding is. Errors fail pgss_lint and the CI gate. */
enum class Severity : std::uint8_t
{
    Info,    ///< observation, no action needed
    Warning, ///< suspicious but architecturally defined
    Error,   ///< the program is wrong or violates a declared contract
};

/** Stable finding codes, one per distinct defect class. */
enum class Check : std::uint8_t
{
    // Structure pass.
    BadTarget,         ///< static branch/jump target out of range
    FallsOffEnd,       ///< execution can run past the last instruction
    IndirectNoTargets, ///< Jalr with no declared target set

    // CFG / reachability pass.
    UnreachableCode,   ///< block can never execute

    // Register def-use pass.
    ReadBeforeWrite,   ///< register read before any write reaches it
    DeadStoreReg,      ///< register write never observed before redef

    // Call-convention pass.
    CalleeWritesReserved, ///< subroutine writes a driver-reserved reg
    CalleeClobbersLink,   ///< leaf subroutine overwrites the link reg
    CallIntoMidProc,      ///< call target is not a subroutine entry

    // Memory / segment pass.
    OutOfSegment,      ///< static address outside declared segments
    MisalignedAccess,  ///< static address not 8-byte aligned
    DeadStoreMem,      ///< static address stored but never loaded

    // RAS / call-discipline pass.
    RasUnderflow,      ///< return executes with an empty call stack
    RasLeak,           ///< halt reachable with a non-empty call stack
    FallIntoProc,      ///< path falls through into another subroutine
    RecursionUnverified, ///< call-graph cycle; balance not provable

    NumChecks
};

/** Stable dotted name of @p check, e.g. "cfg.unreachable-code". */
std::string_view checkName(Check check);

/** Lower-case severity name: "info", "warning", "error". */
std::string_view severityName(Severity severity);

/** One defect, anchored to an instruction index. */
struct Finding
{
    Check check = Check::NumChecks;
    Severity severity = Severity::Info;
    std::uint64_t pc = 0;    ///< anchor instruction index
    std::string message;     ///< human-readable detail

    /** Render as "error cfg.unreachable-code @12: ...". */
    std::string str() const;
};

/** The verifier's result for one program. */
struct Report
{
    std::string program;           ///< program name
    std::size_t code_size = 0;     ///< static instructions analysed
    std::vector<Finding> findings; ///< sorted by (pc, code)

    /** Count findings at @p severity. */
    std::size_t count(Severity severity) const;

    /** True when no error-severity finding was reported. */
    bool clean() const { return count(Severity::Error) == 0; }

    /** Sort findings by (pc, code) for deterministic output. */
    void sort();
};

} // namespace pgss::progcheck

#endif // PGSS_PROGCHECK_FINDING_HH

/**
 * @file
 * Entry point of the program verifier: runs every analysis pass over
 * one isa::Program and returns a Report. Three consumers share it:
 *
 *  - tools/pgss_lint, the CLI (text and JSON findings, nonzero exit
 *    on error-severity findings);
 *  - ProgramBuilder::finalize(), which verifies every built workload
 *    when PGSS_VERIFY_PROGRAMS is enabled (default: debug builds);
 *  - the progcheck test suite, which asserts exact finding codes on
 *    hand-built fixtures and a clean bill for the ten suite
 *    workloads.
 */

#ifndef PGSS_PROGCHECK_VERIFIER_HH
#define PGSS_PROGCHECK_VERIFIER_HH

#include <iosfwd>
#include <string>

#include "progcheck/finding.hh"
#include "progcheck/passes.hh"

namespace pgss::progcheck
{

/** Run all passes over @p prog. */
Report verify(const isa::Program &prog, const Options &opt = {});

/** Render @p report as human-readable text, one finding per line. */
void renderText(std::ostream &os, const Report &report);

/**
 * Append @p report as a JSON object:
 * {"program": ..., "code_size": N, "errors": E, "warnings": W,
 *  "findings": [{"code", "severity", "pc", "message"}, ...]}.
 */
std::string reportJson(const Report &report);

/**
 * True when finalize()-time verification is enabled: the
 * PGSS_VERIFY_PROGRAMS environment variable ("0"/"off" disables,
 * "1"/"on" forces), defaulting to on in debug builds (NDEBUG unset)
 * and off otherwise.
 */
bool verifyOnBuild();

} // namespace pgss::progcheck

#endif // PGSS_PROGCHECK_VERIFIER_HH

/**
 * @file
 * Dataflow machinery shared by the verifier passes: a sparse constant
 * propagation that resolves statically-addressed memory accesses, and
 * bitvector dataflow (backward liveness, forward may-uninitialised)
 * over a slot space of the 32 architectural registers plus one slot
 * per distinct static data word. All analyses run on the global CFG
 * (call edges into subroutines, declared return edges back out), so
 * effects observed across calls — e.g. a cursor stored by one kernel
 * invocation and loaded by the next — are modelled.
 */

#ifndef PGSS_PROGCHECK_DATAFLOW_HH
#define PGSS_PROGCHECK_DATAFLOW_HH

#include <cstdint>
#include <vector>

#include "progcheck/cfg.hh"

namespace pgss::progcheck
{

/** A memory access whose byte address is a compile-time constant. */
struct StaticAccess
{
    std::uint32_t pc = 0;    ///< instruction index
    std::uint64_t addr = 0;  ///< byte address
    bool is_store = false;
};

/**
 * Constant-propagation result: per-pc resolved memory addresses. Only
 * addresses that are the same constant on every path reaching the
 * instruction are recorded; loop-carried pointers merge to unknown.
 */
struct ConstProp
{
    std::vector<StaticAccess> accesses; ///< ascending by pc

    /** The access at @p pc, or nullptr when its address is dynamic. */
    const StaticAccess *accessAt(std::uint32_t pc) const;
};

/** Run constant propagation over reachable blocks of @p cfg. */
ConstProp runConstProp(const Cfg &cfg);

/** Dense bitset sized at construction; slots indexed from 0. */
class BitSet
{
  public:
    explicit BitSet(std::size_t bits = 0)
        : words_((bits + 63) / 64, 0)
    {
    }

    void set(std::size_t i) { words_[i >> 6] |= 1ull << (i & 63); }
    void clear(std::size_t i)
    {
        words_[i >> 6] &= ~(1ull << (i & 63));
    }
    bool test(std::size_t i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1;
    }
    void setAll()
    {
        for (auto &w : words_)
            w = ~0ull;
    }

    /** this |= other; returns true when any bit changed. */
    bool orWith(const BitSet &other)
    {
        bool changed = false;
        for (std::size_t i = 0; i < words_.size(); ++i) {
            const std::uint64_t merged = words_[i] | other.words_[i];
            changed |= merged != words_[i];
            words_[i] = merged;
        }
        return changed;
    }

  private:
    std::vector<std::uint64_t> words_;
};

/**
 * Slot space of the dataflow bitvectors: registers r0..r31 occupy
 * slots 0..31, each distinct static data word one slot after that.
 */
struct SlotMap
{
    std::vector<std::uint64_t> addrs; ///< sorted unique word addresses

    std::size_t numSlots() const { return 32 + addrs.size(); }

    /** Slot of the static word at @p addr, or -1. */
    int slotOf(std::uint64_t addr) const;

    /** Build from the static accesses in @p cp. */
    static SlotMap build(const ConstProp &cp);
};

/**
 * Backward may-liveness: live_out[b] holds the slots whose values may
 * still be observed after block @p b executes. A load with a dynamic
 * address conservatively uses every static-memory slot; a store with
 * a dynamic address kills nothing.
 */
struct Liveness
{
    SlotMap slots;
    std::vector<BitSet> live_out; ///< per block id
};

Liveness computeLiveness(const Cfg &cfg, const ConstProp &cp);

/**
 * Forward may-uninitialised registers: in[b] holds the registers that
 * may reach block @p b without any write (r0 is always initialised).
 * Memory slots are not tracked — the data image is host-initialised.
 */
struct MayUninit
{
    std::vector<BitSet> in; ///< per block id, register slots only
};

MayUninit computeMayUninit(const Cfg &cfg);

} // namespace pgss::progcheck

#endif // PGSS_PROGCHECK_DATAFLOW_HH

/**
 * @file
 * The synthetic SPEC2000-analogue suite. Each workload is a phase
 * script: a set of kernel instances (each emitted once, so each phase
 * owns distinct code) plus a schedule of blocks — sequences of steps
 * that call instances a given number of times, optionally repeated to
 * create recurring phases. DESIGN.md section 3 documents which paper
 * property each analogue reproduces.
 */

#ifndef PGSS_WORKLOAD_SUITE_HH
#define PGSS_WORKLOAD_SUITE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "workload/kernels.hh"

namespace pgss::workload
{

/** One step of a block: call @p instance enough times for ~ops. */
struct StepSpec
{
    std::string instance; ///< kernel instance name
    double ops;           ///< dynamic-op budget per block repetition
};

/** A repeated sequence of steps (one level of schedule nesting). */
struct BlockSpec
{
    std::vector<StepSpec> steps;
    std::uint32_t repeats = 1;
};

/** A complete workload description. */
struct WorkloadSpec
{
    std::string name;
    std::vector<std::pair<std::string, KernelSpec>> instances;
    std::vector<BlockSpec> blocks;
};

/** A built workload: the program plus its size estimate. */
struct BuiltWorkload
{
    isa::Program program;
    double estimated_ops = 0.0;
};

/**
 * Assemble a runnable program from @p spec.
 * @param scale multiplies the dynamic length (block repeats first,
 *        residual factor applied to step op budgets). 1.0 keeps the
 *        spec's nominal length.
 */
BuiltWorkload buildProgram(const WorkloadSpec &spec, double scale = 1.0);

/** Names of the ten evaluation workloads, in the paper's order. */
const std::vector<std::string> &suiteNames();

/**
 * Spec for one named workload (suite names plus "wupwise").
 * @param input input-set variant, 0-2. The paper evaluates "the
 *        first reference input" (0); the variants model SPEC's
 *        alternative inputs — same code structure, different data
 *        seeds, working-set sizes, and phase proportions — for
 *        studying input sensitivity (offline SimPoint analyses must
 *        be redone per input; online techniques adapt).
 */
WorkloadSpec workloadSpec(const std::string &name,
                          std::uint32_t input = 0);

/** Build one named workload at the given scale and input. */
BuiltWorkload buildWorkload(const std::string &name, double scale = 1.0,
                            std::uint32_t input = 0);

/** Number of input variants available per workload. */
constexpr std::uint32_t num_inputs = 3;

} // namespace pgss::workload

#endif // PGSS_WORKLOAD_SUITE_HH

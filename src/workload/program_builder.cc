#include "workload/program_builder.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pgss::workload
{

ProgramBuilder::ProgramBuilder(std::string name) : name_(std::move(name))
{
    bb_starts_.push_back(0);
}

std::uint32_t
ProgramBuilder::here() const
{
    return static_cast<std::uint32_t>(code_.size());
}

std::uint32_t
ProgramBuilder::emit(isa::Opcode op, std::uint8_t rd, std::uint8_t rs1,
                     std::uint8_t rs2, std::int64_t imm)
{
    const std::uint32_t index = here();
    code_.push_back({op, rd, rs1, rs2, imm});
    const isa::OpInfo &info = isa::opInfo(op);
    // A control transfer ends a basic block; the next instruction
    // starts one.
    if (info.is_branch || info.is_jump)
        bb_starts_.push_back(index + 1);
    return index;
}

std::uint32_t
ProgramBuilder::emitBranch(isa::Opcode op, std::uint8_t rs1,
                           std::uint8_t rs2)
{
    util::panicIf(!isa::opInfo(op).is_branch,
                  "emitBranch requires a branch opcode");
    return emit(op, 0, rs1, rs2, 0);
}

void
ProgramBuilder::patchTarget(std::uint32_t index, std::uint32_t target)
{
    util::panicIf(index >= code_.size(),
                  "patchTarget index out of range");
    const isa::OpInfo &info = code_[index].info();
    util::panicIf(!info.is_branch && !info.is_jump,
                  "patchTarget on a non-control instruction");
    code_[index].imm = target;
}

std::uint32_t
ProgramBuilder::loadImm(std::uint8_t rd, std::uint64_t value)
{
    return emit(isa::Opcode::Lui, rd, 0, 0,
                static_cast<std::int64_t>(value));
}

void
ProgramBuilder::markBlockStart()
{
    if (bb_starts_.empty() || bb_starts_.back() != here())
        bb_starts_.push_back(here());
}

std::uint64_t
ProgramBuilder::allocData(std::uint64_t bytes, std::uint64_t align)
{
    util::panicIf(align == 0 || (align & (align - 1)) != 0,
                  "allocData alignment must be a power of two");
    data_cursor_ = (data_cursor_ + align - 1) & ~(align - 1);
    const std::uint64_t base = data_cursor_;
    data_cursor_ += bytes;
    const std::uint64_t words = (data_cursor_ + 7) / 8;
    if (words > data_words_.size())
        data_words_.resize(words, 0);
    return base;
}

void
ProgramBuilder::initWord(std::uint64_t addr, std::uint64_t value)
{
    util::panicIf((addr & 7) != 0, "initWord address must be aligned");
    const std::uint64_t w = addr >> 3;
    util::panicIf(w >= data_words_.size(),
                  "initWord outside allocated data");
    data_words_[w] = value;
}

isa::Program
ProgramBuilder::finalize(std::uint64_t entry)
{
    util::panicIf(entry >= code_.size(), "program entry out of range");
    isa::Program prog;
    prog.name = name_;
    prog.code = std::move(code_);
    prog.data_bytes = data_words_.size() * 8;
    prog.data_words = std::move(data_words_);
    prog.entry = entry;
    // Deduplicate and sort the block starts.
    std::sort(bb_starts_.begin(), bb_starts_.end());
    bb_starts_.erase(std::unique(bb_starts_.begin(), bb_starts_.end()),
                     bb_starts_.end());
    while (!bb_starts_.empty() && bb_starts_.back() >= prog.code.size())
        bb_starts_.pop_back();
    prog.bb_starts = std::move(bb_starts_);
    return prog;
}

} // namespace pgss::workload

#include "workload/program_builder.hh"

#include <algorithm>

#include "progcheck/verifier.hh"
#include "util/logging.hh"

namespace pgss::workload
{

ProgramBuilder::ProgramBuilder(std::string name) : name_(std::move(name))
{
    bb_starts_.push_back(0);
}

std::uint32_t
ProgramBuilder::here() const
{
    return static_cast<std::uint32_t>(code_.size());
}

std::uint32_t
ProgramBuilder::emit(isa::Opcode op, std::uint8_t rd, std::uint8_t rs1,
                     std::uint8_t rs2, std::int64_t imm)
{
    const std::uint32_t index = here();
    code_.push_back({op, rd, rs1, rs2, imm});
    const isa::OpInfo &info = isa::opInfo(op);
    // A control transfer ends a basic block; the next instruction
    // starts one.
    if (info.is_branch || info.is_jump)
        bb_starts_.push_back(index + 1);
    return index;
}

std::uint32_t
ProgramBuilder::emitBranch(isa::Opcode op, std::uint8_t rs1,
                           std::uint8_t rs2)
{
    util::panicIf(!isa::opInfo(op).is_branch,
                  "emitBranch requires a branch opcode");
    return emit(op, 0, rs1, rs2, 0);
}

void
ProgramBuilder::patchTarget(std::uint32_t index, std::uint32_t target)
{
    util::panicIf(index >= code_.size(),
                  "patchTarget index out of range");
    const isa::OpInfo &info = code_[index].info();
    util::panicIf(!info.is_branch && !info.is_jump,
                  "patchTarget on a non-control instruction");
    code_[index].imm = target;
}

std::uint32_t
ProgramBuilder::loadImm(std::uint8_t rd, std::uint64_t value)
{
    return emit(isa::Opcode::Lui, rd, 0, 0,
                static_cast<std::int64_t>(value));
}

void
ProgramBuilder::markBlockStart()
{
    if (bb_starts_.empty() || bb_starts_.back() != here())
        bb_starts_.push_back(here());
}

std::uint64_t
ProgramBuilder::allocData(std::uint64_t bytes, std::uint64_t align,
                          const std::string &label)
{
    util::panicIf(align == 0 || (align & (align - 1)) != 0,
                  "allocData alignment must be a power of two");
    data_cursor_ = (data_cursor_ + align - 1) & ~(align - 1);
    const std::uint64_t base = data_cursor_;
    data_cursor_ += bytes;
    const std::uint64_t words = (data_cursor_ + 7) / 8;
    if (words > data_words_.size())
        data_words_.resize(words, 0);
    segments_.push_back(
        {label.empty() ? "seg" + std::to_string(segments_.size())
                       : label,
         base, bytes});
    return base;
}

void
ProgramBuilder::declareIndirectTargets(std::uint32_t index,
                                       std::vector<std::uint32_t>
                                           targets)
{
    util::panicIf(index >= code_.size(),
                  "declareIndirectTargets index out of range");
    util::panicIf(code_[index].op != isa::Opcode::Jalr,
                  "declareIndirectTargets on a non-indirect "
                  "instruction");
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()),
                  targets.end());
    indirect_targets_.push_back({index, std::move(targets)});
}

void
ProgramBuilder::initWord(std::uint64_t addr, std::uint64_t value)
{
    util::panicIf((addr & 7) != 0, "initWord address must be aligned");
    const std::uint64_t w = addr >> 3;
    util::panicIf(w >= data_words_.size(),
                  "initWord outside allocated data");
    data_words_[w] = value;
}

void
ProgramBuilder::deriveReturnTargets()
{
    // BTB-style return-target sets: a Jalr through a link register
    // can land on any call+1 whose Jal wrote that register. Explicit
    // declarations (computed jumps) are left untouched.
    std::vector<std::uint32_t> continuations[isa::num_regs];
    for (std::size_t pc = 0; pc < code_.size(); ++pc) {
        const isa::Instruction &inst = code_[pc];
        if (isa::isCall(inst) && pc + 1 < code_.size())
            continuations[inst.rd].push_back(
                static_cast<std::uint32_t>(pc + 1));
    }
    for (std::size_t pc = 0; pc < code_.size(); ++pc) {
        const isa::Instruction &inst = code_[pc];
        if (inst.op != isa::Opcode::Jalr || inst.imm != 0 ||
            inst.rd != isa::reg_zero)
            continue;
        const bool declared = std::any_of(
            indirect_targets_.begin(), indirect_targets_.end(),
            [pc](const isa::IndirectTargetSet &set) {
                return set.at == pc;
            });
        if (declared || continuations[inst.rs1].empty())
            continue;
        indirect_targets_.push_back(
            {static_cast<std::uint32_t>(pc),
             continuations[inst.rs1]});
    }
    std::sort(indirect_targets_.begin(), indirect_targets_.end(),
              [](const isa::IndirectTargetSet &a,
                 const isa::IndirectTargetSet &b) {
                  return a.at < b.at;
              });
}

isa::Program
ProgramBuilder::finalize(std::uint64_t entry)
{
    util::panicIf(entry >= code_.size(), "program entry out of range");
    deriveReturnTargets();
    isa::Program prog;
    prog.name = name_;
    prog.code = std::move(code_);
    prog.data_bytes = data_words_.size() * 8;
    prog.data_words = std::move(data_words_);
    prog.entry = entry;
    prog.segments = std::move(segments_);
    prog.indirect_targets = std::move(indirect_targets_);
    // Deduplicate and sort the block starts.
    std::sort(bb_starts_.begin(), bb_starts_.end());
    bb_starts_.erase(std::unique(bb_starts_.begin(), bb_starts_.end()),
                     bb_starts_.end());
    while (!bb_starts_.empty() && bb_starts_.back() >= prog.code.size())
        bb_starts_.pop_back();
    prog.bb_starts = std::move(bb_starts_);

    // Debug-mode backstop: every built program goes through the
    // static verifier, so emission bugs (unreachable code, RAS
    // imbalance, out-of-segment addresses) fail at construction
    // instead of silently skewing simulations.
    if (verify_on_finalize_ && progcheck::verifyOnBuild()) {
        const progcheck::Report report = progcheck::verify(prog);
        if (!report.clean()) {
            for (const progcheck::Finding &f : report.findings) {
                if (f.severity == progcheck::Severity::Error)
                    util::warn("progcheck: %s: %s",
                               prog.name.c_str(), f.str().c_str());
            }
            util::panic("progcheck: program '%s' has %zu "
                        "error-severity finding(s)",
                        prog.name.c_str(),
                        report.count(progcheck::Severity::Error));
        }
    }
    return prog;
}

} // namespace pgss::workload

#include "workload/suite.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/logging.hh"

namespace pgss::workload
{

namespace
{

constexpr double M = 1e6;
constexpr double K = 1e3;
constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * 1024;

/** Shorthand for a kernel spec. */
KernelSpec
kspec(KernelKind kind, std::uint64_t footprint, std::uint32_t iters,
      std::uint32_t ilp, double bias, std::uint64_t seed,
      std::uint32_t stride = 1)
{
    KernelSpec s;
    s.kind = kind;
    s.footprint_bytes = footprint;
    s.inner_iters = iters;
    s.ilp = ilp;
    s.taken_bias = bias;
    s.seed = seed;
    s.stride_words = stride;
    return s;
}

// ------------------------------------------------------------------ specs

WorkloadSpec
gzipSpec()
{
    WorkloadSpec w;
    w.name = "164.gzip";
    w.instances = {
        {"scan", kspec(KernelKind::Branchy, 256 * KiB, 0, 0, 0.70, 11)},
        {"match", kspec(KernelKind::Chase, 96 * KiB, 20000, 2, 0, 12)},
        {"emit", kspec(KernelKind::Stream, 128 * KiB, 0, 0, 0, 13)},
        {"huff", kspec(KernelKind::Compute, 0, 30000, 3, 0, 14)},
        {"scan_s", kspec(KernelKind::Branchy, 64 * KiB, 0, 0, 0.70, 15)},
        {"emit_s", kspec(KernelKind::Stream, 48 * KiB, 0, 0, 0, 16)},
    };
    // Compress / fine-grained mix / encode, alternating. The micro
    // block gives gzip the wild 100k-granularity IPC variation of
    // Figure 2 that averages out at coarse sampling.
    const BlockSpec compress{{{"scan", 2.0 * M}, {"match", 1.5 * M}}, 8};
    const BlockSpec micro{{{"scan_s", 60 * K}, {"emit_s", 40 * K}}, 140};
    const BlockSpec encode{{{"emit", 2.0 * M}, {"huff", 1.5 * M}}, 6};
    for (int i = 0; i < 7; ++i) {
        w.blocks.push_back(compress);
        w.blocks.push_back(micro);
        w.blocks.push_back(encode);
    }
    return w;
}

WorkloadSpec
mesaSpec()
{
    WorkloadSpec w;
    w.name = "177.mesa";
    w.instances = {
        {"tri", kspec(KernelKind::Compute, 0, 60000, 8, 0, 21)},
        {"tex", kspec(KernelKind::Stream, 192 * KiB, 0, 0, 0, 22)},
        {"clip", kspec(KernelKind::Branchy, 64 * KiB, 0, 0, 0.85, 23)},
    };
    w.blocks = {
        {{{"tri", 20.0 * M}, {"tex", 8.0 * M}, {"clip", 7.0 * M}}, 10},
    };
    return w;
}

WorkloadSpec
artSpec()
{
    WorkloadSpec w;
    w.name = "179.art";
    w.instances = {
        {"f1", kspec(KernelKind::Chase, 768 * KiB, 12665, 0, 0, 31)},
        {"f2", kspec(KernelKind::Compute, 0, 3832, 4, 0, 32)},
        {"scan", kspec(KernelKind::Stream, 2 * MiB, 0, 0, 0, 33)},
        {"train", kspec(KernelKind::Reduce, 1 * MiB, 0, 0, 0, 34)},
    };
    // ~61k-op micro-phases (38k chase + 23k compute), incommensurate
    // with both the 100k and 1M BBV periods: fine periods see
    // unstable micro-phase mixtures ("many periods consist of two or
    // three unique behaviors in different amounts"), which PGSS must
    // pay for with far more samples; 10M periods average the
    // behaviour into surrounding phases and lose accuracy.
    const BlockSpec osc{{{"f1", 38000.0}, {"f2", 22999.0}}, 2600};
    w.blocks = {
        osc,
        {{{"scan", 20.0 * M}}, 1},
        osc,
        {{{"train", 15.0 * M}}, 1},
        {{{"scan", 10.0 * M}}, 1},
    };
    return w;
}

WorkloadSpec
mcfSpec()
{
    WorkloadSpec w;
    w.name = "181.mcf";
    w.instances = {
        {"arcs", kspec(KernelKind::Chase, 8 * MiB, 6500, 1, 0, 41)},
        {"nodes", kspec(KernelKind::HashScatter, 8 * MiB, 3715, 0, 0,
                        42)},
        {"price", kspec(KernelKind::Branchy, 128 * KiB, 0, 0, 0.80, 43)},
    };
    // ~52k-op micro-phases, near-locked against the 100k period's
    // sample positions (see the art comment above).
    const BlockSpec osc{{{"arcs", 26 * K}, {"nodes", 26 * K}}, 1600};
    w.blocks = {
        osc,
        {{{"price", 10.0 * M}, {"arcs", 5.0 * M}}, 5},
        osc,
        {{{"price", 10.0 * M}, {"arcs", 5.0 * M}}, 5},
    };
    return w;
}

WorkloadSpec
equakeSpec()
{
    WorkloadSpec w;
    w.name = "183.equake";
    w.instances = {
        {"stencil", kspec(KernelKind::Stencil, 2 * MiB, 0, 0, 0, 51)},
        {"smvp", kspec(KernelKind::Reduce, 512 * KiB, 0, 0, 0, 52)},
        {"init", kspec(KernelKind::Stream, 4 * MiB, 0, 0, 0, 53)},
    };
    w.blocks = {
        {{{"init", 15.0 * M}}, 1},
        {{{"stencil", 35.0 * M}, {"smvp", 10.0 * M}}, 8},
        {{{"init", 15.0 * M}}, 1},
    };
    return w;
}

WorkloadSpec
ammpSpec()
{
    WorkloadSpec w;
    w.name = "188.ammp";
    w.instances = {
        {"force", kspec(KernelKind::Compute, 0, 40000, 6, 0, 61)},
        {"nb", kspec(KernelKind::Chase, 512 * KiB, 30000, 4, 0, 62)},
        {"upd", kspec(KernelKind::Stencil, 256 * KiB, 0, 0, 0, 63)},
    };
    w.blocks = {
        {{{"force", 18.0 * M}, {"nb", 12.0 * M}, {"upd", 8.0 * M}}, 10},
    };
    return w;
}

WorkloadSpec
parserSpec()
{
    WorkloadSpec w;
    w.name = "197.parser";
    w.instances = {
        {"dict", kspec(KernelKind::Branchy, 512 * KiB, 0, 0, 0.60, 71)},
        {"link", kspec(KernelKind::Chase, 256 * KiB, 25000, 2, 0, 72)},
        {"str", kspec(KernelKind::Stream, 64 * KiB, 0, 0, 0, 73)},
    };
    w.blocks = {
        {{{"dict", 2.5 * M}, {"link", 1.5 * M}, {"str", 2.0 * M}}, 60},
    };
    return w;
}

WorkloadSpec
perlbmkSpec()
{
    WorkloadSpec w;
    w.name = "253.perlbmk";
    w.instances = {
        {"interp",
         kspec(KernelKind::Branchy, 256 * KiB, 0, 0, 0.55, 81)},
        {"hash",
         kspec(KernelKind::HashScatter, 512 * KiB, 20000, 0, 0, 82)},
        {"re", kspec(KernelKind::Compute, 0, 30000, 3, 0, 83)},
        {"gc", kspec(KernelKind::Reduce, 768 * KiB, 0, 0, 0, 84)},
    };
    w.blocks = {
        {{{"interp", 6.0 * M},
          {"hash", 3.0 * M},
          {"re", 4.0 * M},
          {"gc", 2.0 * M}},
         24},
    };
    return w;
}

WorkloadSpec
bzip2Spec()
{
    WorkloadSpec w;
    w.name = "256.bzip2";
    w.instances = {
        {"sort",
         kspec(KernelKind::HashScatter, 4 * MiB, 15000, 0, 0, 91)},
        {"mtf", kspec(KernelKind::Branchy, 1 * MiB, 0, 0, 0.65, 92)},
        {"huff", kspec(KernelKind::Compute, 0, 30000, 3, 0, 93)},
        {"io", kspec(KernelKind::Stream, 256 * KiB, 0, 0, 0, 94)},
    };
    const BlockSpec block_sort{{{"sort", 12.0 * M}, {"mtf", 10.0 * M}},
                               1};
    const BlockSpec block_code{{{"huff", 8.0 * M}, {"io", 6.0 * M}}, 1};
    for (int i = 0; i < 10; ++i) {
        w.blocks.push_back(block_sort);
        w.blocks.push_back(block_code);
    }
    return w;
}

WorkloadSpec
twolfSpec()
{
    WorkloadSpec w;
    w.name = "300.twolf";
    w.instances = {
        {"place", kspec(KernelKind::Branchy, 192 * KiB, 0, 0, 0.70,
                        101)},
        {"cost", kspec(KernelKind::Reduce, 128 * KiB, 0, 0, 0, 102)},
        {"spike_lo", kspec(KernelKind::SerialFp, 0, 8000, 0, 0, 103)},
        {"spike_hi", kspec(KernelKind::Compute, 0, 12000, 8, 0, 104)},
    };
    // Weak coarse phase behaviour (place/cost have similar IPC) with
    // periodic short abnormal excursions at fine granularity — the
    // paper's description of twolf in Section 4.
    const BlockSpec main_mix{{{"place", 1.8 * M}, {"cost", 1.2 * M}},
                             12};
    const BlockSpec spikes{{{"spike_lo", 24 * K}, {"spike_hi", 120 * K}},
                           1};
    for (int i = 0; i < 9; ++i) {
        w.blocks.push_back(main_mix);
        w.blocks.push_back(spikes);
    }
    return w;
}

WorkloadSpec
wupwiseSpec()
{
    WorkloadSpec w;
    w.name = "168.wupwise";
    w.instances = {
        {"zgemm", kspec(KernelKind::Compute, 0, 50000, 8, 0, 111)},
        {"zdotc", kspec(KernelKind::Reduce, 1 * MiB, 0, 0, 0, 112)},
        {"gather", kspec(KernelKind::Stream, 4 * MiB, 0, 0, 0, 113)},
    };
    const BlockSpec b1{{{"zgemm", 20.0 * M}}, 1};
    const BlockSpec b2{{{"zdotc", 15.0 * M}}, 1};
    const BlockSpec b3{{{"gather", 10.0 * M}}, 1};
    for (int i = 0; i < 9; ++i) {
        w.blocks.push_back(b1);
        w.blocks.push_back(b2);
        w.blocks.push_back(b3);
    }
    return w;
}

/**
 * Derive an input-set variant: same code structure (kernel kinds and
 * schedule shape), different data seeds, working-set sizes, loop
 * counts, and phase proportions — the kind of drift SPEC reference
 * inputs exhibit between each other.
 */
void
applyInput(WorkloadSpec &spec, std::uint32_t input)
{
    util::panicIf(input >= num_inputs, "unknown workload input");
    if (input == 0)
        return;
    spec.name += ".in" + std::to_string(input);

    const double footprint_scale = input == 1 ? 1.5 : 0.75;
    const double iter_scale = input == 1 ? 0.9 : 1.2;
    const double bias_shift = input == 1 ? 0.05 : -0.05;
    const std::uint64_t seed_shift = 1000ull * input;

    for (auto &[name, k] : spec.instances) {
        (void)name;
        k.seed += seed_shift;
        if (k.footprint_bytes > 0) {
            k.footprint_bytes = static_cast<std::uint64_t>(
                k.footprint_bytes * footprint_scale);
        }
        if (k.inner_iters > 0) {
            k.inner_iters = std::max<std::uint32_t>(
                16, static_cast<std::uint32_t>(k.inner_iters *
                                               iter_scale));
        }
        k.taken_bias =
            std::clamp(k.taken_bias + bias_shift, 0.05, 0.95);
    }

    // Shift phase proportions: grow the first step of every block,
    // shrink the last (different inputs spend time differently).
    for (BlockSpec &block : spec.blocks) {
        if (block.steps.size() < 2)
            continue;
        block.steps.front().ops *= input == 1 ? 1.3 : 0.8;
        block.steps.back().ops *= input == 1 ? 0.8 : 1.25;
    }
}

} // anonymous namespace

BuiltWorkload
buildProgram(const WorkloadSpec &spec, double scale)
{
    util::panicIf(scale <= 0.0, "workload scale must be positive");
    ProgramBuilder b(spec.name);

    // Emit every kernel instance once; remember entries and sizes.
    std::map<std::string, KernelCode> code;
    for (const auto &[name, kspec_] : spec.instances) {
        util::panicIf(code.contains(name),
                      "duplicate kernel instance name");
        code[name] = emitKernel(b, kspec_);
    }

    // Emit the schedule driver.
    const std::uint32_t entry = b.here();
    double total_ops = 0.0;

    for (const BlockSpec &block : spec.blocks) {
        util::panicIf(block.steps.empty(), "block with no steps");

        // Scale block repeats first; push any residual factor into
        // the per-step op budgets so tiny-step oscillation blocks
        // still shrink/grow correctly.
        std::uint32_t repeats = block.repeats;
        double residual = scale;
        if (repeats > 1) {
            const auto scaled = static_cast<std::uint32_t>(std::max(
                1.0, std::llround(repeats * scale) * 1.0));
            residual = scale * repeats / scaled;
            repeats = scaled;
        }

        b.markBlockStart();
        b.loadImm(regs::drv0, repeats);
        const std::uint32_t block_top = b.here();
        double block_ops = 0.0;

        for (const StepSpec &step : block.steps) {
            const auto it = code.find(step.instance);
            util::panicIf(it == code.end(),
                          "step references unknown instance");
            const KernelCode &kc = it->second;
            const auto calls = static_cast<std::uint32_t>(std::max<
                std::int64_t>(
                1, std::llround(step.ops * residual / kc.ops_per_call)));

            b.markBlockStart();
            b.loadImm(regs::drv1, calls);
            const std::uint32_t step_top = b.here();
            b.emit(isa::Opcode::Jal, regs::link, 0, 0,
                   static_cast<std::int64_t>(kc.entry));
            b.emit(isa::Opcode::Addi, regs::drv1, regs::drv1, 0, -1);
            const std::uint32_t br =
                b.emitBranch(isa::Opcode::Bne, regs::drv1, 0);
            b.patchTarget(br, step_top);
            block_ops += calls * (kc.ops_per_call + 3.0) + 1.0;
        }

        b.emit(isa::Opcode::Addi, regs::drv0, regs::drv0, 0, -1);
        const std::uint32_t br =
            b.emitBranch(isa::Opcode::Bne, regs::drv0, 0);
        b.patchTarget(br, block_top);
        total_ops += repeats * block_ops + 1.0;
    }

    b.emit(isa::Opcode::Halt, 0, 0, 0, 0);

    BuiltWorkload built;
    built.program = b.finalize(entry);
    built.estimated_ops = total_ops;
    return built;
}

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {
        "164.gzip",    "177.mesa",  "179.art",    "181.mcf",
        "183.equake",  "188.ammp",  "197.parser", "253.perlbmk",
        "256.bzip2",   "300.twolf",
    };
    return names;
}

WorkloadSpec
workloadSpec(const std::string &name, std::uint32_t input)
{
    WorkloadSpec spec = [&name]() -> WorkloadSpec {
        if (name == "164.gzip" || name == "gzip")
            return gzipSpec();
        if (name == "177.mesa" || name == "mesa")
            return mesaSpec();
        if (name == "179.art" || name == "art")
            return artSpec();
        if (name == "181.mcf" || name == "mcf")
            return mcfSpec();
        if (name == "183.equake" || name == "equake")
            return equakeSpec();
        if (name == "188.ammp" || name == "ammp")
            return ammpSpec();
        if (name == "197.parser" || name == "parser")
            return parserSpec();
        if (name == "253.perlbmk" || name == "perlbmk")
            return perlbmkSpec();
        if (name == "256.bzip2" || name == "bzip2")
            return bzip2Spec();
        if (name == "300.twolf" || name == "twolf")
            return twolfSpec();
        if (name == "168.wupwise" || name == "wupwise")
            return wupwiseSpec();
        util::fatal("unknown workload '%s'", name.c_str());
    }();
    applyInput(spec, input);
    return spec;
}

BuiltWorkload
buildWorkload(const std::string &name, double scale,
              std::uint32_t input)
{
    return buildProgram(workloadSpec(name, input), scale);
}

} // namespace pgss::workload

#include "workload/kernels.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/logging.hh"

namespace pgss::workload
{

namespace
{

using isa::Opcode;
using R = std::uint8_t;

// Kernel-scratch register names (see regs:: convention).
constexpr R r_cnt = 2;   ///< loop counter
constexpr R r_base = 3;  ///< primary base/cursor
constexpr R r_base2 = 4; ///< secondary base
constexpr R r_t0 = 5;
constexpr R r_t1 = 6;
constexpr R r_t2 = 7;
constexpr R r_acc = 8;
constexpr R r_chain0 = 9;  ///< chains r9..r11 + r4..r8 reuse as needed
constexpr R r_const = 12;  ///< FP multiplier / integer constant
constexpr R r_const2 = 13;
constexpr R r_const3 = 14;

std::uint64_t
doubleBits(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

/** Emit the common "dec-and-loop-back, then return" tail. */
void
emitLoopTail(ProgramBuilder &b, std::uint32_t loop_top)
{
    b.emit(Opcode::Addi, r_cnt, r_cnt, 0, -1);
    const std::uint32_t br = b.emitBranch(Opcode::Bne, r_cnt, 0);
    b.patchTarget(br, loop_top);
    b.emit(Opcode::Jalr, 0, regs::link, 0, 0);
}

KernelCode
emitStream(ProgramBuilder &b, const KernelSpec &spec)
{
    const std::uint32_t stride = std::max<std::uint32_t>(
        1, spec.stride_words);
    const std::uint64_t iters =
        std::max<std::uint64_t>(8, spec.footprint_bytes / (8 * stride));
    const std::uint64_t base =
        b.allocData(iters * stride * 8, 64, "stream.data");

    KernelCode kc;
    b.markBlockStart();
    kc.entry = b.here();
    b.loadImm(r_base, base);
    b.loadImm(r_cnt, iters);
    const std::uint32_t loop = b.here();
    b.markBlockStart();
    b.emit(Opcode::Ld, r_t0, r_base, 0, 0);
    b.emit(Opcode::Addi, r_t0, r_t0, 0, 1);
    b.emit(Opcode::St, 0, r_base, r_t0, 0);
    b.emit(Opcode::Addi, r_base, r_base, 0,
           static_cast<std::int64_t>(stride * 8));
    emitLoopTail(b, loop);
    kc.ops_per_call = 6.0 * static_cast<double>(iters) + 3.0;
    return kc;
}

KernelCode
emitChase(ProgramBuilder &b, const KernelSpec &spec)
{
    const std::uint64_t n =
        std::max<std::uint64_t>(16, spec.footprint_bytes / 8);
    const std::uint64_t base = b.allocData(n * 8, 64, "chase.nodes");
    const std::uint64_t cursor = b.allocData(8, 8, "chase.cursor");

    // Host-side: one random Hamiltonian cycle through the n slots.
    util::Rng rng(spec.seed * 0x51ed2701u + 17);
    std::vector<std::uint64_t> perm(n);
    for (std::uint64_t i = 0; i < n; ++i)
        perm[i] = i;
    rng.shuffle(perm);
    for (std::uint64_t k = 0; k < n; ++k) {
        const std::uint64_t slot = perm[k];
        const std::uint64_t next = perm[(k + 1) % n];
        b.initWord(base + slot * 8, base + next * 8);
    }
    b.initWord(cursor, base + perm[0] * 8);

    const std::uint32_t filler = std::min<std::uint32_t>(4, spec.ilp);

    KernelCode kc;
    b.markBlockStart();
    kc.entry = b.here();
    b.loadImm(r_base2, cursor);
    b.emit(Opcode::Ld, r_base, r_base2, 0, 0);
    b.loadImm(r_cnt, spec.inner_iters);
    const std::uint32_t loop = b.here();
    b.markBlockStart();
    b.emit(Opcode::Ld, r_base, r_base, 0, 0);
    for (std::uint32_t f = 0; f < filler; ++f)
        b.emit(Opcode::Addi, static_cast<R>(r_t0 + f),
               static_cast<R>(r_t0 + f), 0, 1);
    b.emit(Opcode::Addi, r_cnt, r_cnt, 0, -1);
    const std::uint32_t br = b.emitBranch(Opcode::Bne, r_cnt, 0);
    b.patchTarget(br, loop);
    // The loop-back bne falls through on the final trip; the cursor
    // is saved before returning so the walk resumes where it
    // stopped. (The seed emitted this St after the return, where it
    // could never execute — the progcheck unreachable-code finding
    // this PR's regression test pins.)
    b.markBlockStart();
    b.emit(Opcode::St, 0, r_base2, r_base, 0);
    b.emit(Opcode::Jalr, 0, regs::link, 0, 0);
    kc.ops_per_call =
        (3.0 + filler) * static_cast<double>(spec.inner_iters) + 5.0;
    return kc;
}

KernelCode
emitCompute(ProgramBuilder &b, const KernelSpec &spec)
{
    const std::uint32_t ilp =
        std::clamp<std::uint32_t>(spec.ilp, 1, 8);

    KernelCode kc;
    b.markBlockStart();
    kc.entry = b.here();
    b.loadImm(r_const, doubleBits(1.0));
    for (std::uint32_t c = 0; c < ilp; ++c)
        b.loadImm(static_cast<R>(r_base2 + c),
                  doubleBits(1.0 + 0.125 * (c + 1)));
    b.loadImm(r_cnt, spec.inner_iters);
    const std::uint32_t loop = b.here();
    b.markBlockStart();
    for (std::uint32_t c = 0; c < ilp; ++c)
        b.emit(Opcode::Fmul, static_cast<R>(r_base2 + c),
               static_cast<R>(r_base2 + c), r_const, 0);
    emitLoopTail(b, loop);
    kc.ops_per_call = (static_cast<double>(ilp) + 2.0) *
                          static_cast<double>(spec.inner_iters) +
                      ilp + 3.0;
    return kc;
}

KernelCode
emitSerialFp(ProgramBuilder &b, const KernelSpec &spec)
{
    KernelCode kc;
    b.markBlockStart();
    kc.entry = b.here();
    b.loadImm(r_const, doubleBits(1.0));
    b.loadImm(r_acc, doubleBits(1.5));
    b.loadImm(r_cnt, spec.inner_iters);
    const std::uint32_t loop = b.here();
    b.markBlockStart();
    b.emit(Opcode::Fdiv, r_acc, r_acc, r_const, 0);
    emitLoopTail(b, loop);
    kc.ops_per_call = 3.0 * static_cast<double>(spec.inner_iters) + 4.0;
    return kc;
}

KernelCode
emitBranchy(ProgramBuilder &b, const KernelSpec &spec)
{
    const std::uint64_t n =
        std::max<std::uint64_t>(64, spec.footprint_bytes / 8);
    const std::uint64_t base =
        b.allocData(n * 8, 64, "branchy.data");

    // Host-side: random words whose low bit drives the conditional
    // branch; bit0 == 0 (branch taken, work skipped) with probability
    // taken_bias.
    util::Rng rng(spec.seed * 0x9c1fab3du + 5);
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t word = rng.next() | 1ull;
        if (rng.nextBool(spec.taken_bias))
            word &= ~1ull;
        b.initWord(base + i * 8, word);
    }

    KernelCode kc;
    b.markBlockStart();
    kc.entry = b.here();
    b.loadImm(r_base, base);
    b.loadImm(r_cnt, n);
    const std::uint32_t loop = b.here();
    b.markBlockStart();
    b.emit(Opcode::Ld, r_t0, r_base, 0, 0);
    b.emit(Opcode::Andi, r_t1, r_t0, 0, 1);
    const std::uint32_t skip_br = b.emitBranch(Opcode::Beq, r_t1, 0);
    b.emit(Opcode::Add, r_acc, r_acc, r_t0, 0);
    b.emit(Opcode::Xor, r_t2, r_t2, r_t0, 0);
    b.markBlockStart();
    b.patchTarget(skip_br, b.here());
    b.emit(Opcode::Addi, r_base, r_base, 0, 8);
    emitLoopTail(b, loop);
    kc.ops_per_call =
        (6.0 + 2.0 * (1.0 - spec.taken_bias)) * static_cast<double>(n) +
        3.0;
    return kc;
}

KernelCode
emitStencil(ProgramBuilder &b, const KernelSpec &spec)
{
    const std::uint64_t n =
        std::max<std::uint64_t>(16, spec.footprint_bytes / 16);
    const std::uint64_t in = b.allocData(n * 8, 64, "stencil.in");
    const std::uint64_t out = b.allocData(n * 8, 64, "stencil.out");

    util::Rng rng(spec.seed * 0x2545f491u + 3);
    for (std::uint64_t i = 0; i < n; ++i)
        b.initWord(in + i * 8, doubleBits(rng.nextDouble()));

    const std::uint64_t iters = n - 2;

    KernelCode kc;
    b.markBlockStart();
    kc.entry = b.here();
    b.loadImm(r_base, in);
    b.loadImm(r_base2, out);
    b.loadImm(r_const, doubleBits(1.0 / 3.0));
    b.loadImm(r_cnt, iters);
    const std::uint32_t loop = b.here();
    b.markBlockStart();
    b.emit(Opcode::Ld, r_t0, r_base, 0, 0);
    b.emit(Opcode::Ld, r_t1, r_base, 0, 8);
    b.emit(Opcode::Ld, r_t2, r_base, 0, 16);
    b.emit(Opcode::Fadd, r_acc, r_t0, r_t1, 0);
    b.emit(Opcode::Fadd, r_acc, r_acc, r_t2, 0);
    b.emit(Opcode::Fmul, r_acc, r_acc, r_const, 0);
    b.emit(Opcode::St, 0, r_base2, r_acc, 0);
    b.emit(Opcode::Addi, r_base, r_base, 0, 8);
    b.emit(Opcode::Addi, r_base2, r_base2, 0, 8);
    emitLoopTail(b, loop);
    kc.ops_per_call = 11.0 * static_cast<double>(iters) + 5.0;
    return kc;
}

KernelCode
emitHashScatter(ProgramBuilder &b, const KernelSpec &spec)
{
    std::uint64_t n = std::bit_floor(
        std::max<std::uint64_t>(64, spec.footprint_bytes / 8));
    const std::uint64_t base =
        b.allocData(n * 8, 64, "hash_scatter.data");

    KernelCode kc;
    b.markBlockStart();
    kc.entry = b.here();
    b.loadImm(r_base, base);
    b.loadImm(r_t0, spec.seed | 1);
    b.loadImm(r_const, 0x9e3779b97f4a7c15ull);
    b.loadImm(r_const2, 17); // shift distance
    b.loadImm(r_acc, 0xabcdef);
    b.loadImm(r_cnt, spec.inner_iters);
    const std::uint32_t loop = b.here();
    b.markBlockStart();
    b.emit(Opcode::Mul, r_t0, r_t0, r_const, 0);
    b.emit(Opcode::Srl, r_t1, r_t0, r_const2, 0);
    b.emit(Opcode::Andi, r_t1, r_t1, 0,
           static_cast<std::int64_t>((n - 1) * 8));
    b.emit(Opcode::Add, r_t2, r_base, r_t1, 0);
    b.emit(Opcode::St, 0, r_t2, r_acc, 0);
    emitLoopTail(b, loop);
    kc.ops_per_call = 7.0 * static_cast<double>(spec.inner_iters) + 7.0;
    return kc;
}

KernelCode
emitReduce(ProgramBuilder &b, const KernelSpec &spec)
{
    const std::uint64_t n =
        std::max<std::uint64_t>(16, spec.footprint_bytes / 8);
    const std::uint64_t base = b.allocData(n * 8, 64, "reduce.data");

    util::Rng rng(spec.seed * 0x853c49e6u + 11);
    for (std::uint64_t i = 0; i < n; ++i)
        b.initWord(base + i * 8, doubleBits(rng.nextDouble()));

    KernelCode kc;
    b.markBlockStart();
    kc.entry = b.here();
    b.loadImm(r_base, base);
    b.loadImm(r_acc, doubleBits(0.0));
    b.loadImm(r_cnt, n);
    const std::uint32_t loop = b.here();
    b.markBlockStart();
    b.emit(Opcode::Ld, r_t0, r_base, 0, 0);
    b.emit(Opcode::Fadd, r_acc, r_acc, r_t0, 0);
    b.emit(Opcode::Addi, r_base, r_base, 0, 8);
    emitLoopTail(b, loop);
    kc.ops_per_call = 5.0 * static_cast<double>(n) + 4.0;
    return kc;
}

} // anonymous namespace

KernelCode
emitKernel(ProgramBuilder &b, const KernelSpec &spec)
{
    switch (spec.kind) {
      case KernelKind::Stream:
        return emitStream(b, spec);
      case KernelKind::Chase:
        return emitChase(b, spec);
      case KernelKind::Compute:
        return emitCompute(b, spec);
      case KernelKind::SerialFp:
        return emitSerialFp(b, spec);
      case KernelKind::Branchy:
        return emitBranchy(b, spec);
      case KernelKind::Stencil:
        return emitStencil(b, spec);
      case KernelKind::HashScatter:
        return emitHashScatter(b, spec);
      case KernelKind::Reduce:
        return emitReduce(b, spec);
    }
    util::panic("unknown kernel kind");
}

std::string
kindName(KernelKind kind)
{
    switch (kind) {
      case KernelKind::Stream:
        return "stream";
      case KernelKind::Chase:
        return "chase";
      case KernelKind::Compute:
        return "compute";
      case KernelKind::SerialFp:
        return "serial_fp";
      case KernelKind::Branchy:
        return "branchy";
      case KernelKind::Stencil:
        return "stencil";
      case KernelKind::HashScatter:
        return "hash_scatter";
      case KernelKind::Reduce:
        return "reduce";
    }
    return "unknown";
}

} // namespace pgss::workload

/**
 * @file
 * The kernel library: parameterised loop nests that the synthetic
 * SPEC2000 analogues are scripted from. Each kernel is emitted as a
 * standalone subroutine (called via jal/jalr through the link
 * register) with its own data allocation, so every instance has a
 * distinct basic-block footprint — which is exactly what BBV-based
 * phase detection keys on.
 *
 * Kernel performance levers:
 *  - footprint_bytes: working-set size → L1/L2/memory residency.
 *  - ilp: number of independent dependency chains → achievable IPC.
 *  - taken_bias: branch predictability for the Branchy kernel.
 *  - inner_iters / stride_words: loop length and access pattern.
 */

#ifndef PGSS_WORKLOAD_KERNELS_HH
#define PGSS_WORKLOAD_KERNELS_HH

#include <cstdint>
#include <string>

#include "util/random.hh"
#include "workload/program_builder.hh"

namespace pgss::workload
{

/** Kernel families. See the file comment for the levers each uses. */
enum class KernelKind : std::uint8_t
{
    Stream,      ///< load-modify-store sweep over an array
    Chase,       ///< serialized pointer chase over a permutation
    Compute,     ///< FP multiply/add chains, register-resident
    SerialFp,    ///< dependent unpipelined fdiv chain (very low IPC)
    Branchy,     ///< data-dependent, poorly-predictable branches
    Stencil,     ///< 3-point stencil: loads, FP ops, store
    HashScatter, ///< pseudo-random stores over a footprint
    Reduce,      ///< sequential loads into a dependent accumulator
};

/** Parameters of one kernel instance. */
struct KernelSpec
{
    KernelKind kind = KernelKind::Stream;
    std::uint64_t footprint_bytes = 32 * 1024;
    std::uint32_t inner_iters = 1024; ///< loop trips per call
    std::uint32_t ilp = 4;            ///< chains for Compute
    double taken_bias = 0.5;          ///< P(taken) for Branchy
    std::uint32_t stride_words = 1;   ///< for Stream
    std::uint64_t seed = 1;           ///< data-initialisation seed
};

/** Where a kernel instance landed in the program. */
struct KernelCode
{
    std::uint32_t entry = 0;    ///< subroutine entry index
    double ops_per_call = 0.0;  ///< dynamic instructions per call
};

/**
 * Emit one kernel instance.
 * @param b builder receiving code and data.
 * @param spec kernel parameters.
 * @return entry point and per-call dynamic-op estimate (exact for all
 *         kernels except Branchy, where the skipped-arm rate depends
 *         on the data and the estimate uses its expectation).
 */
KernelCode emitKernel(ProgramBuilder &b, const KernelSpec &spec);

/** Human-readable kind name, for diagnostics. */
std::string kindName(KernelKind kind);

} // namespace pgss::workload

#endif // PGSS_WORKLOAD_KERNELS_HH

/**
 * @file
 * Code and data emission for synthetic programs. The builder appends
 * pre-decoded instructions, tracks basic-block boundaries, allocates
 * and host-initialises data memory, and patches forward branch
 * targets. Kernels and phase-script drivers are emitted through this
 * interface; the result is a self-contained isa::Program.
 */

#ifndef PGSS_WORKLOAD_PROGRAM_BUILDER_HH
#define PGSS_WORKLOAD_PROGRAM_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace pgss::workload
{

/**
 * Register-use convention for generated code (no stack, no spills):
 * r0 zero, r1 link register, r2-r15 kernel scratch (re-initialised at
 * every kernel entry), r16-r19 reserved for the phase-script driver
 * loops. Kernels must not touch the driver registers.
 */
namespace regs
{
constexpr std::uint8_t zero = 0;
constexpr std::uint8_t link = 1;
constexpr std::uint8_t k0 = 2;   ///< first kernel scratch register
constexpr std::uint8_t k_last = 15;
constexpr std::uint8_t drv0 = 16; ///< first driver register
constexpr std::uint8_t drv1 = 17;
} // namespace regs

/** Builds one isa::Program. */
class ProgramBuilder
{
  public:
    /** Start a program named @p name. */
    explicit ProgramBuilder(std::string name);

    /** Index the next emitted instruction will occupy. */
    std::uint32_t here() const;

    /** Append an instruction; returns its index. */
    std::uint32_t emit(isa::Opcode op, std::uint8_t rd,
                       std::uint8_t rs1, std::uint8_t rs2,
                       std::int64_t imm = 0);

    /** Append a conditional branch whose target is patched later. */
    std::uint32_t emitBranch(isa::Opcode op, std::uint8_t rs1,
                             std::uint8_t rs2);

    /** Patch the control-transfer target of instruction @p index. */
    void patchTarget(std::uint32_t index, std::uint32_t target);

    /** Materialise a full 64-bit immediate into @p rd (one Lui). */
    std::uint32_t loadImm(std::uint8_t rd, std::uint64_t value);

    /** Record that the next instruction starts a basic block. */
    void markBlockStart();

    /**
     * Reserve @p bytes of data memory.
     * @param align alignment in bytes (power of two).
     * @param label segment name recorded in the program's segment
     *        table (empty picks "seg<n>"); the progcheck memory pass
     *        verifies static address arithmetic against these.
     * @return the base byte address of the allocation.
     */
    std::uint64_t allocData(std::uint64_t bytes,
                            std::uint64_t align = 64,
                            const std::string &label = "");

    /**
     * Declare the complete static target set of the indirect jump at
     * @p index (BTB-style). finalize() auto-derives the set for every
     * undeclared link-register return — all call sites + 1 — so only
     * computed jumps need explicit declarations.
     */
    void declareIndirectTargets(std::uint32_t index,
                                std::vector<std::uint32_t> targets);

    /** Host-initialise the 64-bit word at byte address @p addr. */
    void initWord(std::uint64_t addr, std::uint64_t value);

    /**
     * Opt this builder out of (or back into) finalize()-time
     * verification. Test fixtures that deliberately build partial or
     * broken programs use this; production emission never should.
     */
    void setVerifyOnFinalize(bool on) { verify_on_finalize_ = on; }

    /** Bytes of data memory allocated so far. */
    std::uint64_t dataBytes() const { return data_cursor_; }

    /**
     * Produce the finished program. Return-target sets are derived
     * for undeclared link-register returns, and — when
     * progcheck::verifyOnBuild() is enabled (PGSS_VERIFY_PROGRAMS,
     * default on in debug builds) — the finished program is run
     * through the static verifier; error-severity findings panic.
     * @param entry index of the first instruction to execute.
     */
    isa::Program finalize(std::uint64_t entry);

  private:
    void deriveReturnTargets();

    std::string name_;
    std::vector<isa::Instruction> code_;
    std::vector<std::uint32_t> bb_starts_;
    std::vector<std::uint64_t> data_words_;
    std::uint64_t data_cursor_ = 0;
    std::vector<isa::DataSegment> segments_;
    std::vector<isa::IndirectTargetSet> indirect_targets_;
    bool verify_on_finalize_ = true;
};

} // namespace pgss::workload

#endif // PGSS_WORKLOAD_PROGRAM_BUILDER_HH

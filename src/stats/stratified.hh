/**
 * @file
 * Stratified (per-phase) estimation. PGSS estimates whole-program CPI
 * as an occupancy-weighted combination of per-phase sample means —
 * the "weighted sum of the performance of each phase multiplied by
 * the contribution of that phase" the paper describes for both
 * SimPoint and PGSS.
 */

#ifndef PGSS_STATS_STRATIFIED_HH
#define PGSS_STATS_STRATIFIED_HH

#include <cstdint>
#include <vector>

#include "stats/running_stats.hh"

namespace pgss::stats
{

/** One stratum: its sample statistics and its population weight. */
struct Stratum
{
    RunningStats samples; ///< per-sample observations (e.g. CPI)
    double weight = 0.0;  ///< share of the population (e.g. op count)
};

/** Combines strata into a population estimate. */
class StratifiedEstimator
{
  public:
    /** Add a stratum (weight need not be normalised). */
    void addStratum(const Stratum &stratum);

    /** Weighted mean across strata with at least one sample. */
    double mean() const;

    /**
     * Variance of the stratified mean estimator:
     * sum over strata of (w_i/W)^2 * s_i^2 / n_i.
     */
    double estimatorVariance() const;

    /** Total weight of strata that contributed samples. */
    double coveredWeight() const;

    /** Total weight of all strata (sampled or not). */
    double totalWeight() const;

    /** Number of strata added. */
    std::size_t strataCount() const { return strata_.size(); }

  private:
    std::vector<Stratum> strata_;
};

} // namespace pgss::stats

#endif // PGSS_STATS_STRATIFIED_HH

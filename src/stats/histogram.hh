/**
 * @file
 * Fixed-bin histogram, used for the Figure-3 IPC distribution and the
 * Figure-7 two-dimensional BBV-change/IPC-change density plot.
 */

#ifndef PGSS_STATS_HISTOGRAM_HH
#define PGSS_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace pgss::stats
{

/** One-dimensional histogram over [lo, hi) with equal-width bins. */
class Histogram
{
  public:
    /** @pre hi > lo, bins > 0. */
    Histogram(double lo, double hi, std::uint32_t bins);

    /** Add @p weight to the bin containing @p x (clamped to range). */
    void add(double x, double weight = 1.0);

    /** Bin index for @p x (clamped). */
    std::uint32_t binFor(double x) const;

    /** Weight in bin @p i. */
    double binWeight(std::uint32_t i) const { return weights_[i]; }

    /** Centre value of bin @p i. */
    double binCenter(std::uint32_t i) const;

    /** Number of bins. */
    std::uint32_t bins() const { return static_cast<std::uint32_t>(
        weights_.size()); }

    /** Total weight added. */
    double total() const { return total_; }

    /** Weights normalised to fractions of the total. */
    std::vector<double> normalized() const;

    /**
     * Number of local maxima ("modes") whose weight exceeds
     * @p min_fraction of the total — the polymodality measure used
     * when reproducing Figure 3.
     */
    std::uint32_t modeCount(double min_fraction = 0.01) const;

  private:
    double lo_, hi_, width_;
    std::vector<double> weights_;
    double total_ = 0.0;
};

/** Two-dimensional histogram (x: BBV change, y: IPC change). */
class Histogram2d
{
  public:
    Histogram2d(double x_lo, double x_hi, std::uint32_t x_bins,
                double y_lo, double y_hi, std::uint32_t y_bins);

    /** Add @p weight at (x, y), clamped into range. */
    void add(double x, double y, double weight = 1.0);

    double cell(std::uint32_t xi, std::uint32_t yi) const;
    std::uint32_t xBins() const { return x_bins_; }
    std::uint32_t yBins() const { return y_bins_; }
    double xCenter(std::uint32_t xi) const;
    double yCenter(std::uint32_t yi) const;
    double total() const { return total_; }

  private:
    double x_lo_, x_hi_, y_lo_, y_hi_;
    std::uint32_t x_bins_, y_bins_;
    std::vector<double> cells_;
    double total_ = 0.0;
};

} // namespace pgss::stats

#endif // PGSS_STATS_HISTOGRAM_HH

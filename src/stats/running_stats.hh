/**
 * @file
 * Streaming first/second-moment statistics (Welford's algorithm).
 * Used for per-phase CPI profiles, interval-IPC summaries, and the
 * SMARTS/TurboSMARTS convergence tests.
 */

#ifndef PGSS_STATS_RUNNING_STATS_HH
#define PGSS_STATS_RUNNING_STATS_HH

#include <cstdint>

namespace pgss::stats
{

/** Numerically-stable streaming mean/variance with min/max. */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one (Chan's method). */
    void merge(const RunningStats &other);

    /** Number of observations. */
    std::uint64_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 when n < 2). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Population variance (divides by n). */
    double populationVariance() const;

    /** Coefficient of variation: stddev / |mean| (0 when mean == 0). */
    double cov() const;

    /** Smallest observation (0 when empty). */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest observation (0 when empty). */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of observations. */
    double sum() const { return mean_ * static_cast<double>(n_); }

    /** Discard everything. */
    void reset();

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace pgss::stats

#endif // PGSS_STATS_RUNNING_STATS_HH

#include "stats/running_stats.hh"

#include <algorithm>
#include <cmath>

namespace pgss::stats
{

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStats::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::populationVariance() const
{
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double
RunningStats::cov() const
{
    return mean_ != 0.0 ? stddev() / std::abs(mean_) : 0.0;
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

} // namespace pgss::stats

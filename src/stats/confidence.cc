#include "stats/confidence.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace pgss::stats
{

double
normalQuantile(double p)
{
    util::panicIf(p <= 0.0 || p >= 1.0,
                  "normalQuantile domain is (0, 1)");

    // Acklam's algorithm.
    static const double a[] = {-3.969683028665376e+01,
                               2.209460984245205e+02,
                               -2.759285104469687e+02,
                               1.383577518672690e+02,
                               -3.066479806614716e+01,
                               2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01,
                               1.615858368580409e+02,
                               -1.556989798598866e+02,
                               6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03,
                               -3.223964580411365e-01,
                               -2.400758277161838e+00,
                               -2.549732539343734e+00,
                               4.374664141464968e+00,
                               2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03,
                               3.224671290700398e-01,
                               2.445134137142996e+00,
                               3.754408661907416e+00};

    constexpr double p_low = 0.02425;
    constexpr double p_high = 1.0 - p_low;

    double q, r;
    if (p < p_low) {
        q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                 c[4]) *
                    q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p <= p_high) {
        q = p - 0.5;
        r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r +
                 a[4]) *
                    r +
                a[5]) *
               q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r +
                 b[4]) *
                    r +
                1.0);
    }
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                 q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double
tQuantile(double p, std::uint64_t df)
{
    util::panicIf(p <= 0.0 || p >= 1.0, "tQuantile domain is (0, 1)");
    util::panicIf(df == 0, "tQuantile requires df >= 1");

    if (df == 1)
        return std::tan(M_PI * (p - 0.5));
    if (df == 2) {
        const double x = 2.0 * p - 1.0;
        return x * std::sqrt(2.0 / (1.0 - x * x));
    }
    if (df > 200)
        return normalQuantile(p);

    // Cornish-Fisher expansion around the normal quantile.
    const double z = normalQuantile(p);
    const double n = static_cast<double>(df);
    const double z3 = z * z * z;
    const double z5 = z3 * z * z;
    const double z7 = z5 * z * z;
    const double z9 = z7 * z * z;
    double t = z;
    t += (z3 + z) / (4.0 * n);
    t += (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * n * n);
    t += (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) /
         (384.0 * n * n * n);
    t += (79.0 * z9 + 776.0 * z7 + 1482.0 * z5 - 1920.0 * z3 -
          945.0 * z) /
         (92160.0 * n * n * n * n);
    return t;
}

double
ciHalfWidth(const RunningStats &s, double confidence)
{
    if (s.count() < 2)
        return std::numeric_limits<double>::infinity();
    const double alpha = 1.0 - confidence;
    const double t = tQuantile(1.0 - alpha / 2.0, s.count() - 1);
    return t * std::sqrt(s.variance() /
                         static_cast<double>(s.count()));
}

bool
withinConfidence(const RunningStats &s, double confidence,
                 double relative_error, std::uint64_t min_samples)
{
    if (s.count() < min_samples || s.count() < 2)
        return false;
    const double hw = ciHalfWidth(s, confidence);
    return hw <= relative_error * std::abs(s.mean());
}

} // namespace pgss::stats

#include "stats/histogram.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pgss::stats
{

Histogram::Histogram(double lo, double hi, std::uint32_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / bins), weights_(bins, 0.0)
{
    util::panicIf(hi <= lo, "histogram range must be increasing");
    util::panicIf(bins == 0, "histogram needs at least one bin");
}

std::uint32_t
Histogram::binFor(double x) const
{
    if (x <= lo_)
        return 0;
    if (x >= hi_)
        return bins() - 1;
    return std::min<std::uint32_t>(
        bins() - 1, static_cast<std::uint32_t>((x - lo_) / width_));
}

void
Histogram::add(double x, double weight)
{
    weights_[binFor(x)] += weight;
    total_ += weight;
}

double
Histogram::binCenter(std::uint32_t i) const
{
    return lo_ + (i + 0.5) * width_;
}

std::vector<double>
Histogram::normalized() const
{
    std::vector<double> out(weights_);
    if (total_ > 0.0)
        for (double &w : out)
            w /= total_;
    return out;
}

std::uint32_t
Histogram::modeCount(double min_fraction) const
{
    if (total_ <= 0.0)
        return 0;
    const double min_weight = min_fraction * total_;
    std::uint32_t modes = 0;
    for (std::uint32_t i = 0; i < bins(); ++i) {
        const double w = weights_[i];
        if (w < min_weight)
            continue;
        const double left = i > 0 ? weights_[i - 1] : 0.0;
        const double right = i + 1 < bins() ? weights_[i + 1] : 0.0;
        if (w >= left && w > right)
            ++modes;
    }
    return modes;
}

Histogram2d::Histogram2d(double x_lo, double x_hi, std::uint32_t x_bins,
                         double y_lo, double y_hi,
                         std::uint32_t y_bins)
    : x_lo_(x_lo), x_hi_(x_hi), y_lo_(y_lo), y_hi_(y_hi),
      x_bins_(x_bins), y_bins_(y_bins),
      cells_(static_cast<std::size_t>(x_bins) * y_bins, 0.0)
{
    util::panicIf(x_hi <= x_lo || y_hi <= y_lo,
                  "histogram2d range must be increasing");
    util::panicIf(x_bins == 0 || y_bins == 0,
                  "histogram2d needs at least one bin per axis");
}

void
Histogram2d::add(double x, double y, double weight)
{
    const double fx = std::clamp(
        (x - x_lo_) / (x_hi_ - x_lo_), 0.0, 1.0);
    const double fy = std::clamp(
        (y - y_lo_) / (y_hi_ - y_lo_), 0.0, 1.0);
    const auto xi = std::min<std::uint32_t>(
        x_bins_ - 1, static_cast<std::uint32_t>(fx * x_bins_));
    const auto yi = std::min<std::uint32_t>(
        y_bins_ - 1, static_cast<std::uint32_t>(fy * y_bins_));
    cells_[static_cast<std::size_t>(yi) * x_bins_ + xi] += weight;
    total_ += weight;
}

double
Histogram2d::cell(std::uint32_t xi, std::uint32_t yi) const
{
    return cells_[static_cast<std::size_t>(yi) * x_bins_ + xi];
}

double
Histogram2d::xCenter(std::uint32_t xi) const
{
    return x_lo_ + (xi + 0.5) * (x_hi_ - x_lo_) / x_bins_;
}

double
Histogram2d::yCenter(std::uint32_t yi) const
{
    return y_lo_ + (yi + 0.5) * (y_hi_ - y_lo_) / y_bins_;
}

} // namespace pgss::stats

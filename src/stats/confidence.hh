/**
 * @file
 * Confidence-interval machinery. TurboSMARTS stops drawing samples
 * when the CI of the sample mean is within a relative half-width at a
 * target confidence (the paper uses +/-3% at 99.7%); PGSS applies the
 * same test per phase. Small sample counts use Student's t.
 */

#ifndef PGSS_STATS_CONFIDENCE_HH
#define PGSS_STATS_CONFIDENCE_HH

#include <cstdint>

#include "stats/running_stats.hh"

namespace pgss::stats
{

/**
 * Quantile of the standard normal distribution (Acklam's rational
 * approximation, |error| < 1.2e-9).
 * @param p probability in (0, 1).
 */
double normalQuantile(double p);

/**
 * Quantile of Student's t distribution with @p df degrees of freedom
 * (exact for df 1 and 2, Cornish-Fisher expansion otherwise).
 */
double tQuantile(double p, std::uint64_t df);

/**
 * Half-width of the two-sided CI of the mean of @p s at confidence
 * level @p confidence (e.g. 0.997). Returns +infinity when fewer than
 * two observations exist.
 */
double ciHalfWidth(const RunningStats &s, double confidence);

/**
 * True when the CI half-width of the mean is within
 * @p relative_error * |mean| at @p confidence, given at least
 * @p min_samples observations.
 */
bool withinConfidence(const RunningStats &s, double confidence,
                      double relative_error,
                      std::uint64_t min_samples = 2);

} // namespace pgss::stats

#endif // PGSS_STATS_CONFIDENCE_HH

#include "stats/stratified.hh"

namespace pgss::stats
{

void
StratifiedEstimator::addStratum(const Stratum &stratum)
{
    strata_.push_back(stratum);
}

double
StratifiedEstimator::mean() const
{
    double num = 0.0;
    double den = 0.0;
    for (const Stratum &s : strata_) {
        if (s.samples.count() == 0)
            continue;
        num += s.weight * s.samples.mean();
        den += s.weight;
    }
    return den > 0.0 ? num / den : 0.0;
}

double
StratifiedEstimator::estimatorVariance() const
{
    const double w_total = coveredWeight();
    if (w_total <= 0.0)
        return 0.0;
    double var = 0.0;
    for (const Stratum &s : strata_) {
        if (s.samples.count() < 2)
            continue;
        const double frac = s.weight / w_total;
        var += frac * frac * s.samples.variance() /
               static_cast<double>(s.samples.count());
    }
    return var;
}

double
StratifiedEstimator::coveredWeight() const
{
    double w = 0.0;
    for (const Stratum &s : strata_)
        if (s.samples.count() > 0)
            w += s.weight;
    return w;
}

double
StratifiedEstimator::totalWeight() const
{
    double w = 0.0;
    for (const Stratum &s : strata_)
        w += s.weight;
    return w;
}

} // namespace pgss::stats

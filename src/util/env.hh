/**
 * @file
 * Environment-variable configuration knobs shared by benches and
 * examples: PGSS_SCALE shrinks/grows the synthetic workloads, and
 * PGSS_PROFILE_CACHE points the ground-truth profile cache somewhere
 * other than the default. Other subsystems read their own knobs
 * through envString()/envDouble(): PGSS_LOG_LEVEL (util/logging),
 * PGSS_STATS_JSON and PGSS_TRACE_OUT (obs/report).
 */

#ifndef PGSS_UTIL_ENV_HH
#define PGSS_UTIL_ENV_HH

#include <string>

namespace pgss::util
{

/** String env var with default. */
std::string envString(const char *name, const std::string &def);

/** Double env var with default; malformed values fall back to @p def. */
double envDouble(const char *name, double def);

/**
 * Global workload scale factor from PGSS_SCALE (default 1.0). Multiplies
 * the dynamic length of every suite workload; clamped to [0.01, 100].
 */
double workloadScale();

/**
 * Directory for cached ground-truth interval profiles, from
 * PGSS_PROFILE_CACHE (default: "<cwd>/pgss_profile_cache").
 */
std::string profileCacheDir();

} // namespace pgss::util

#endif // PGSS_UTIL_ENV_HH

/**
 * @file
 * Environment-variable configuration knobs shared by benches and
 * examples: PGSS_SCALE shrinks/grows the synthetic workloads,
 * PGSS_JOBS sets the bench harness's worker-thread count, and
 * PGSS_PROFILE_CACHE points the ground-truth profile cache somewhere
 * other than the default. Other subsystems read their own knobs
 * through envString()/envDouble(): PGSS_LOG_LEVEL (util/logging),
 * PGSS_STATS_JSON and PGSS_TRACE_OUT (obs/report).
 */

#ifndef PGSS_UTIL_ENV_HH
#define PGSS_UTIL_ENV_HH

#include <cstddef>
#include <string>

namespace pgss::util
{

/** String env var with default. */
std::string envString(const char *name, const std::string &def);

/** Double env var with default; malformed values fall back to @p def. */
double envDouble(const char *name, double def);

/**
 * Global workload scale factor from PGSS_SCALE (default 1.0). Multiplies
 * the dynamic length of every suite workload; clamped to [0.01, 100].
 */
double workloadScale();

/**
 * Directory for cached ground-truth interval profiles, from
 * PGSS_PROFILE_CACHE (default: "<cwd>/pgss_profile_cache").
 */
std::string profileCacheDir();

/**
 * Worker threads for the bench harness, from PGSS_JOBS. Default 1
 * (serial — parallelism is opt-in so runs stay deterministic by
 * construction); 0 means one per hardware thread. Clamped to
 * [1, 256].
 */
std::size_t jobCount();

} // namespace pgss::util

#endif // PGSS_UTIL_ENV_HH

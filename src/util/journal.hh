/**
 * @file
 * Append-only completion journal with crash-safe appends (DESIGN.md
 * section 13). Each append is one write() of a complete line to an
 * O_APPEND descriptor followed by fsync, so a crash — even SIGKILL —
 * can lose at most the line being written, never corrupt earlier
 * lines. readLines() drops an unterminated trailing line (torn by a
 * crash) and reports it, so consumers only ever see whole records.
 *
 * The bench harness journals one JSONL record per completed suite
 * entry; `--resume` replays the journal to skip finished work.
 */

#ifndef PGSS_UTIL_JOURNAL_HH
#define PGSS_UTIL_JOURNAL_HH

#include <cstddef>
#include <string>
#include <vector>

namespace pgss::util
{

class Journal
{
  public:
    /** Journal at @p path; the file is created on first append. */
    explicit Journal(std::string path);
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Append @p line (which must not contain '\n') plus a newline,
     * durably. @return false on any failure (real or injected via the
     * "journal.append" fault site); the journal stays usable.
     */
    bool append(const std::string &line);

    const std::string &path() const { return path_; }

    /**
     * Read every complete line of the journal at @p path into @p out.
     * A missing file yields true with no lines (an empty journal). An
     * unterminated trailing line is dropped and counted in
     * @p *torn.
     */
    static bool readLines(const std::string &path,
                          std::vector<std::string> &out,
                          std::size_t *torn = nullptr);

  private:
    std::string path_;
    int fd_ = -1;
};

} // namespace pgss::util

#endif // PGSS_UTIL_JOURNAL_HH

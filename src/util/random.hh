/**
 * @file
 * Deterministic pseudo-random number generation. Every stochastic
 * component in the simulator owns its own Rng seeded explicitly, so an
 * identical configuration always produces bit-identical results
 * (a property the test suite checks).
 */

#ifndef PGSS_UTIL_RANDOM_HH
#define PGSS_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

namespace pgss::util
{

/**
 * xoshiro256** generator seeded through SplitMix64. Small, fast, and
 * good enough statistically for workload synthesis and sampling
 * decisions; not cryptographic.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Standard normal deviate (Box-Muller, one value per call). */
    double nextGaussian();

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p = 0.5);

    /** Fisher-Yates shuffle of a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextBounded(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /**
     * Pick @p count distinct values from [0, bound).
     * @pre count <= bound.
     */
    std::vector<std::uint32_t> sampleDistinct(std::uint32_t count,
                                              std::uint32_t bound);

    /** Full generator state, for checkpointing. */
    struct State
    {
        std::uint64_t s[4];
        double cached_gauss;
        bool has_gauss;
    };

    /** Snapshot of the generator state. */
    State state() const;

    /** Restore a previously captured state. */
    void setState(const State &st);

  private:
    std::uint64_t s_[4];
    double cached_gauss_ = 0.0;
    bool has_gauss_ = false;
};

} // namespace pgss::util

#endif // PGSS_UTIL_RANDOM_HH

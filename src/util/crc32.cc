#include "util/crc32.hh"

#include <array>

namespace pgss::util
{

namespace
{

/** Byte-at-a-time table for the reflected 0xedb88320 polynomial. */
std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256> &
table()
{
    static const std::array<std::uint32_t, 256> t = makeTable();
    return t;
}

} // anonymous namespace

std::uint32_t
crc32Update(std::uint32_t crc, const void *data, std::size_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    const auto &t = table();
    std::uint32_t c = crc ^ 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        c = t[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::uint32_t
crc32(const void *data, std::size_t size)
{
    return crc32Update(0, data, size);
}

} // namespace pgss::util

/**
 * @file
 * Tiny binary serialization layer used by checkpoints and the interval
 * profile cache. Little-endian, length-prefixed, with a magic/version
 * header validated on load and optional CRC-32-sealed sections
 * (DESIGN.md section 13): putSectionCrc() appends the CRC of every
 * byte since the previous seal, and checkSectionCrc() on the reader
 * verifies it — so truncation and bit corruption of a persisted
 * artifact are detected deterministically instead of deserializing
 * into garbage.
 */

#ifndef PGSS_UTIL_SERIALIZE_HH
#define PGSS_UTIL_SERIALIZE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pgss::util
{

struct FileSites;

/** Why a BinaryReader is not ok(). Drives quarantine decisions:
 * Corrupt artifacts are quarantined; Stale ones silently rebuilt. */
enum class ReadError : std::uint8_t
{
    None,    ///< ok() is true
    Missing, ///< file absent (fromFile only)
    Stale,   ///< right magic, different version (old cache entry)
    Corrupt, ///< wrong magic, truncation, or CRC mismatch
};

/** Append-only binary encoder. */
class BinaryWriter
{
  public:
    /** Start a stream tagged with @p magic and @p version. */
    BinaryWriter(std::uint32_t magic, std::uint32_t version);

    void putU8(std::uint8_t v);
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putI64(std::int64_t v);
    void putDouble(double v);
    void putString(const std::string &s);
    void putDoubleVec(const std::vector<double> &v);
    void putU64Vec(const std::vector<std::uint64_t> &v);
    void putU8Vec(const std::vector<std::uint8_t> &v);

    /**
     * Seal the bytes appended since the previous seal (or the stream
     * start, header included) with their CRC-32. The matching
     * BinaryReader::checkSectionCrc() must be called at the same
     * point in the read sequence.
     */
    void putSectionCrc();

    /** The encoded bytes (header included). */
    const std::vector<std::uint8_t> &bytes() const { return buf_; }

    /**
     * Write the encoded bytes to @p path atomically (temp file +
     * fsync + rename; see util::AtomicFileWriter). @p sites selects
     * the fault-injection sites checked ("fs.*" by default).
     * @return false on I/O error or injected fault.
     */
    bool writeFile(const std::string &path,
                   FileSites *sites = nullptr) const;

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t section_start_ = 0;
};

/**
 * Sequential binary decoder matching BinaryWriter. Truncated input,
 * header mismatch, and section-CRC mismatch are all reported through
 * ok()/error(); reads past the end return zero values. Callers decide
 * per error() whether a bad file is a cache miss (Stale) or damage to
 * quarantine (Corrupt).
 */
class BinaryReader
{
  public:
    /** Decode from a byte buffer; validates magic/version. */
    BinaryReader(std::vector<std::uint8_t> data, std::uint32_t magic,
                 std::uint32_t version);

    /** Load a file then decode. A missing file yields !ok(). */
    static BinaryReader fromFile(const std::string &path,
                                 std::uint32_t magic,
                                 std::uint32_t version);

    /** True when the header matched and no read overran the buffer. */
    bool ok() const { return error_ == ReadError::None; }

    /** Failure classification (None while ok()). */
    ReadError error() const { return error_; }

    std::uint8_t getU8();
    std::uint32_t getU32();
    std::uint64_t getU64();
    std::int64_t getI64();
    double getDouble();
    std::string getString();
    std::vector<double> getDoubleVec();
    std::vector<std::uint64_t> getU64Vec();
    std::vector<std::uint8_t> getU8Vec();

    /**
     * Verify the CRC-32 seal of the bytes consumed since the previous
     * check (or the stream start). Mismatch marks the stream Corrupt.
     * @return true when the seal verified.
     */
    bool checkSectionCrc();

    /** True when every byte has been consumed. */
    bool atEnd() const { return pos_ == buf_.size(); }

  private:
    bool need(std::size_t n);
    void markCorrupt() { error_ = ReadError::Corrupt; }

    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    std::size_t section_start_ = 0;
    ReadError error_ = ReadError::None;
};

} // namespace pgss::util

#endif // PGSS_UTIL_SERIALIZE_HH

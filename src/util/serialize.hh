/**
 * @file
 * Tiny binary serialization layer used by checkpoints and the interval
 * profile cache. Little-endian, length-prefixed, with a magic/version
 * header validated on load.
 */

#ifndef PGSS_UTIL_SERIALIZE_HH
#define PGSS_UTIL_SERIALIZE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pgss::util
{

/** Append-only binary encoder. */
class BinaryWriter
{
  public:
    /** Start a stream tagged with @p magic and @p version. */
    BinaryWriter(std::uint32_t magic, std::uint32_t version);

    void putU8(std::uint8_t v);
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putI64(std::int64_t v);
    void putDouble(double v);
    void putString(const std::string &s);
    void putDoubleVec(const std::vector<double> &v);
    void putU64Vec(const std::vector<std::uint64_t> &v);

    /** The encoded bytes (header included). */
    const std::vector<std::uint8_t> &bytes() const { return buf_; }

    /** Write the encoded bytes to @p path. @return false on I/O error. */
    bool writeFile(const std::string &path) const;

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Sequential binary decoder matching BinaryWriter. All getters throw
 * via panic() on truncated input; header mismatch is reported through
 * ok() so callers can treat a stale cache file as a miss.
 */
class BinaryReader
{
  public:
    /** Decode from a byte buffer; validates magic/version. */
    BinaryReader(std::vector<std::uint8_t> data, std::uint32_t magic,
                 std::uint32_t version);

    /** Load a file then decode. A missing file yields !ok(). */
    static BinaryReader fromFile(const std::string &path,
                                 std::uint32_t magic,
                                 std::uint32_t version);

    /** True when the header matched and no read overran the buffer. */
    bool ok() const { return ok_; }

    std::uint8_t getU8();
    std::uint32_t getU32();
    std::uint64_t getU64();
    std::int64_t getI64();
    double getDouble();
    std::string getString();
    std::vector<double> getDoubleVec();
    std::vector<std::uint64_t> getU64Vec();

    /** True when every byte has been consumed. */
    bool atEnd() const { return pos_ == buf_.size(); }

  private:
    bool need(std::size_t n);

    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace pgss::util

#endif // PGSS_UTIL_SERIALIZE_HH

#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace pgss::util
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    panicIf(bound == 0, "Rng::nextBounded with bound == 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    panicIf(lo > hi, "Rng::nextRange with lo > hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian()
{
    if (has_gauss_) {
        has_gauss_ = false;
        return cached_gauss_;
    }
    double u1, u2;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    u2 = nextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    cached_gauss_ = mag * std::sin(2.0 * M_PI * u2);
    has_gauss_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::vector<std::uint32_t>
Rng::sampleDistinct(std::uint32_t count, std::uint32_t bound)
{
    panicIf(count > bound, "Rng::sampleDistinct with count > bound");
    // Partial Fisher-Yates over an index vector; fine for the small
    // bounds (e.g. 32 address bits) this is used for.
    std::vector<std::uint32_t> idx(bound);
    for (std::uint32_t i = 0; i < bound; ++i)
        idx[i] = i;
    for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t j =
            i + static_cast<std::uint32_t>(nextBounded(bound - i));
        std::swap(idx[i], idx[j]);
    }
    idx.resize(count);
    return idx;
}

Rng::State
Rng::state() const
{
    State st;
    for (int i = 0; i < 4; ++i)
        st.s[i] = s_[i];
    st.cached_gauss = cached_gauss_;
    st.has_gauss = has_gauss_;
    return st;
}

void
Rng::setState(const State &st)
{
    for (int i = 0; i < 4; ++i)
        s_[i] = st.s[i];
    cached_gauss_ = st.cached_gauss;
    has_gauss_ = st.has_gauss;
}

} // namespace pgss::util

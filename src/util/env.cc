#include "util/env.hh"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace pgss::util
{

std::string
envString(const char *name, const std::string &def)
{
    const char *v = std::getenv(name);
    return v && *v ? std::string(v) : def;
}

double
envDouble(const char *name, double def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    char *end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0')
        return def;
    return parsed;
}

double
workloadScale()
{
    double s = envDouble("PGSS_SCALE", 1.0);
    return std::clamp(s, 0.01, 100.0);
}

std::string
profileCacheDir()
{
    return envString("PGSS_PROFILE_CACHE", "pgss_profile_cache");
}

std::size_t
jobCount()
{
    const double v = envDouble("PGSS_JOBS", 1.0);
    if (v == 0.0) {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw ? std::min<std::size_t>(hw, 256) : 1;
    }
    if (v < 1.0)
        return 1;
    return static_cast<std::size_t>(std::min(v, 256.0));
}

} // namespace pgss::util

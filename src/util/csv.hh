/**
 * @file
 * Minimal CSV emission, used by benches to dump figure series in a form
 * plotting tools can consume directly.
 */

#ifndef PGSS_UTIL_CSV_HH
#define PGSS_UTIL_CSV_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace pgss::util
{

/**
 * Writes rows of cells as RFC-4180-ish CSV (quotes cells that contain
 * commas, quotes, or newlines).
 */
class CsvWriter
{
  public:
    /** Bind to an output stream owned by the caller. */
    explicit CsvWriter(std::ostream &os);

    /** Write one row. */
    void writeRow(const std::vector<std::string> &cells);

    /** Quote a cell value if the CSV dialect requires it. */
    static std::string escape(const std::string &cell);

  private:
    std::ostream &os_;
};

} // namespace pgss::util

#endif // PGSS_UTIL_CSV_HH

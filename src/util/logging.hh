/**
 * @file
 * Status and error reporting in the gem5 tradition: inform() for normal
 * status, warn() for suspicious-but-survivable conditions, fatal() for
 * user errors that end the run, and panic() for internal invariant
 * violations (aborts, so a debugger or core dump can catch it).
 *
 * The global level is atomic and each message is formatted into one
 * buffer and written under a mutex, so concurrent callers never shear
 * each other's lines. Messages carry the elapsed wall-clock time since
 * process start ("[  12.345] info: ..."). The initial level comes from
 * the PGSS_LOG_LEVEL environment variable ("quiet"/"normal"/"verbose"
 * or 0/1/2); setLogLevel() overrides it.
 */

#ifndef PGSS_UTIL_LOGGING_HH
#define PGSS_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace pgss::util
{

/** Verbosity levels accepted by setLogLevel(). */
enum class LogLevel
{
    Quiet,   ///< suppress inform() output
    Normal,  ///< inform() and warn() printed (default)
    Verbose  ///< additionally print verbose() messages
};

/** Set the global verbosity for inform()/verbose(). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Parse a PGSS_LOG_LEVEL-style spec: "quiet"/"normal"/"verbose"
 * (case-insensitive) or "0"/"1"/"2". Unrecognised input yields
 * @p def.
 */
LogLevel parseLogLevel(const std::string &spec, LogLevel def);

/** Seconds of wall-clock time since process start (message prefix). */
double elapsedSeconds();

/**
 * Print an informational status message to stderr.
 * @param fmt printf-style format string.
 */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Print a message only when the log level is Verbose.
 * @param fmt printf-style format string.
 */
void verbose(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Print a warning about a condition that might indicate a problem but
 * does not stop the simulation.
 * @param fmt printf-style format string.
 */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Terminate the process with exit(1) because of a condition that is the
 * user's fault (bad configuration, invalid arguments).
 * @param fmt printf-style format string.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Abort the process because an internal invariant was violated: a bug in
 * the simulator itself, never a user error.
 * @param fmt printf-style format string.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Like assert() but always compiled in and reported through panic().
 * @param cond condition that must hold.
 * @param what description of the violated invariant.
 */
inline void
panicIf(bool cond, const char *what)
{
    if (cond)
        panic("%s", what);
}

} // namespace pgss::util

#endif // PGSS_UTIL_LOGGING_HH

#include "util/serialize.hh"

#include <cstring>

#include "util/atomic_file.hh"
#include "util/crc32.hh"

namespace pgss::util
{

BinaryWriter::BinaryWriter(std::uint32_t magic, std::uint32_t version)
{
    putU32(magic);
    putU32(version);
}

void
BinaryWriter::putU8(std::uint8_t v)
{
    buf_.push_back(v);
}

void
BinaryWriter::putU32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
BinaryWriter::putU64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
BinaryWriter::putI64(std::int64_t v)
{
    putU64(static_cast<std::uint64_t>(v));
}

void
BinaryWriter::putDouble(double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
BinaryWriter::putString(const std::string &s)
{
    putU64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
}

void
BinaryWriter::putDoubleVec(const std::vector<double> &v)
{
    putU64(v.size());
    for (double d : v)
        putDouble(d);
}

void
BinaryWriter::putU64Vec(const std::vector<std::uint64_t> &v)
{
    putU64(v.size());
    for (std::uint64_t u : v)
        putU64(u);
}

void
BinaryWriter::putU8Vec(const std::vector<std::uint8_t> &v)
{
    putU64(v.size());
    buf_.insert(buf_.end(), v.begin(), v.end());
}

void
BinaryWriter::putSectionCrc()
{
    const std::uint32_t crc =
        crc32(buf_.data() + section_start_, buf_.size() - section_start_);
    putU32(crc);
    section_start_ = buf_.size();
}

bool
BinaryWriter::writeFile(const std::string &path, FileSites *sites) const
{
    return atomicWriteFile(path, buf_.data(), buf_.size(), sites);
}

BinaryReader::BinaryReader(std::vector<std::uint8_t> data,
                           std::uint32_t magic, std::uint32_t version)
    : buf_(std::move(data))
{
    if (buf_.size() < 8) {
        markCorrupt();
        return;
    }
    if (getU32() != magic) {
        markCorrupt();
        return;
    }
    // Right magic but another version is a legitimately old artifact
    // from a previous build, not damage: callers treat it as a cache
    // miss, never quarantine it.
    if (getU32() != version)
        error_ = ReadError::Stale;
}

BinaryReader
BinaryReader::fromFile(const std::string &path, std::uint32_t magic,
                       std::uint32_t version)
{
    std::vector<std::uint8_t> data;
    if (!readFileBytes(path, data)) {
        BinaryReader r(std::move(data), magic, version);
        r.error_ = ReadError::Missing;
        return r;
    }
    return BinaryReader(std::move(data), magic, version);
}

bool
BinaryReader::need(std::size_t n)
{
    if (error_ != ReadError::None || n > buf_.size() - pos_) {
        if (error_ == ReadError::None)
            markCorrupt();
        return false;
    }
    return true;
}

std::uint8_t
BinaryReader::getU8()
{
    if (!need(1))
        return 0;
    return buf_[pos_++];
}

std::uint32_t
BinaryReader::getU32()
{
    if (!need(4))
        return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
    return v;
}

std::uint64_t
BinaryReader::getU64()
{
    if (!need(8))
        return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
    return v;
}

std::int64_t
BinaryReader::getI64()
{
    return static_cast<std::int64_t>(getU64());
}

double
BinaryReader::getDouble()
{
    std::uint64_t bits = getU64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
BinaryReader::getString()
{
    std::uint64_t n = getU64();
    // A corrupt length can exceed size_t on 32-bit targets or the
    // remaining bytes on any target; clamp before need() so nothing
    // ever allocates from an unvalidated count.
    if (!ok() || n > buf_.size() - pos_) {
        markCorrupt();
        return {};
    }
    std::string s(reinterpret_cast<const char *>(buf_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
}

std::vector<double>
BinaryReader::getDoubleVec()
{
    std::uint64_t n = getU64();
    std::vector<double> v;
    // Validate against remaining bytes before reserving: `n * 8` can
    // wrap for a corrupt count and would pass a naive bound check.
    if (!ok() || n > (buf_.size() - pos_) / 8) {
        markCorrupt();
        return v;
    }
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i)
        v.push_back(getDouble());
    return v;
}

std::vector<std::uint64_t>
BinaryReader::getU64Vec()
{
    std::uint64_t n = getU64();
    std::vector<std::uint64_t> v;
    if (!ok() || n > (buf_.size() - pos_) / 8) {
        markCorrupt();
        return v;
    }
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i)
        v.push_back(getU64());
    return v;
}

std::vector<std::uint8_t>
BinaryReader::getU8Vec()
{
    std::uint64_t n = getU64();
    std::vector<std::uint8_t> v;
    if (!ok() || n > buf_.size() - pos_) {
        markCorrupt();
        return v;
    }
    v.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
             buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += static_cast<std::size_t>(n);
    return v;
}

bool
BinaryReader::checkSectionCrc()
{
    if (error_ != ReadError::None)
        return false;
    const std::uint32_t want =
        crc32(buf_.data() + section_start_, pos_ - section_start_);
    const std::uint32_t got = getU32();
    if (error_ != ReadError::None || got != want) {
        markCorrupt();
        return false;
    }
    section_start_ = pos_;
    return true;
}

} // namespace pgss::util

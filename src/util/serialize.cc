#include "util/serialize.hh"

#include <cstring>
#include <fstream>

#include "util/logging.hh"

namespace pgss::util
{

BinaryWriter::BinaryWriter(std::uint32_t magic, std::uint32_t version)
{
    putU32(magic);
    putU32(version);
}

void
BinaryWriter::putU8(std::uint8_t v)
{
    buf_.push_back(v);
}

void
BinaryWriter::putU32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
BinaryWriter::putU64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
BinaryWriter::putI64(std::int64_t v)
{
    putU64(static_cast<std::uint64_t>(v));
}

void
BinaryWriter::putDouble(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
BinaryWriter::putString(const std::string &s)
{
    putU64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
}

void
BinaryWriter::putDoubleVec(const std::vector<double> &v)
{
    putU64(v.size());
    for (double d : v)
        putDouble(d);
}

void
BinaryWriter::putU64Vec(const std::vector<std::uint64_t> &v)
{
    putU64(v.size());
    for (std::uint64_t u : v)
        putU64(u);
}

bool
BinaryWriter::writeFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out.write(reinterpret_cast<const char *>(buf_.data()),
              static_cast<std::streamsize>(buf_.size()));
    return static_cast<bool>(out);
}

BinaryReader::BinaryReader(std::vector<std::uint8_t> data,
                           std::uint32_t magic, std::uint32_t version)
    : buf_(std::move(data))
{
    if (buf_.size() < 8) {
        ok_ = false;
        return;
    }
    if (getU32() != magic || getU32() != version)
        ok_ = false;
}

BinaryReader
BinaryReader::fromFile(const std::string &path, std::uint32_t magic,
                       std::uint32_t version)
{
    std::ifstream in(path, std::ios::binary);
    std::vector<std::uint8_t> data;
    if (in) {
        in.seekg(0, std::ios::end);
        const auto size = in.tellg();
        in.seekg(0, std::ios::beg);
        data.resize(static_cast<std::size_t>(size));
        in.read(reinterpret_cast<char *>(data.data()), size);
        if (!in)
            data.clear();
    }
    return BinaryReader(std::move(data), magic, version);
}

bool
BinaryReader::need(std::size_t n)
{
    if (pos_ + n > buf_.size()) {
        ok_ = false;
        return false;
    }
    return true;
}

std::uint8_t
BinaryReader::getU8()
{
    if (!need(1))
        return 0;
    return buf_[pos_++];
}

std::uint32_t
BinaryReader::getU32()
{
    if (!need(4))
        return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
    return v;
}

std::uint64_t
BinaryReader::getU64()
{
    if (!need(8))
        return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
    return v;
}

std::int64_t
BinaryReader::getI64()
{
    return static_cast<std::int64_t>(getU64());
}

double
BinaryReader::getDouble()
{
    std::uint64_t bits = getU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
BinaryReader::getString()
{
    std::uint64_t n = getU64();
    if (!need(n))
        return {};
    std::string s(reinterpret_cast<const char *>(buf_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
}

std::vector<double>
BinaryReader::getDoubleVec()
{
    std::uint64_t n = getU64();
    std::vector<double> v;
    if (!need(n * 8))
        return v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i)
        v.push_back(getDouble());
    return v;
}

std::vector<std::uint64_t>
BinaryReader::getU64Vec()
{
    std::uint64_t n = getU64();
    std::vector<std::uint64_t> v;
    if (!need(n * 8))
        return v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i)
        v.push_back(getU64());
    return v;
}

} // namespace pgss::util

#include "util/fi.hh"

#include <cstdlib>
#include <map>
#include <mutex>

#include "util/env.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace pgss::util::fi
{

std::atomic<bool> g_active{false};

namespace
{

enum class Mode : std::uint8_t
{
    FailNth,
    FailRate,
    FailAlways,
    FlipNth,
    FlipRate,
};

struct Schedule
{
    std::string site_glob;
    Mode mode = Mode::FailAlways;
    std::uint64_t nth = 0; ///< 1-based check index (nth modes)
    double rate = 0.0;     ///< trigger probability (rate modes)
    std::uint64_t seed = 0x5eed;
    Rng rng{0x5eed}; ///< private stream; deterministic per spec

    bool
    isFlip() const
    {
        return mode == Mode::FlipNth || mode == Mode::FlipRate;
    }
};

struct Config
{
    std::vector<Schedule> schedules;
    std::string spec;
    std::uint64_t generation = 1; ///< bumped per configure()/reset()
};

/** Guards the config, the site list, and every slow-path eval. */
std::mutex &
mtx()
{
    static std::mutex m;
    return m;
}

Config &
config()
{
    static Config c;
    return c;
}

std::vector<Site *> &
siteList()
{
    static std::vector<Site *> s;
    return s;
}

/** node-based so references stay stable across interning */
std::map<std::string, std::atomic<std::uint64_t>> &
counterMap()
{
    static std::map<std::string, std::atomic<std::uint64_t>> m;
    return m;
}

bool
parseMode(const std::string &value, Schedule &s, std::string *error)
{
    auto arg = [&value](std::size_t prefix_len) {
        return value.substr(prefix_len);
    };
    if (value == "fail-always") {
        s.mode = Mode::FailAlways;
        return true;
    }
    if (value.rfind("fail-nth:", 0) == 0 ||
        value.rfind("flip-nth:", 0) == 0) {
        s.mode = value[1] == 'a' ? Mode::FailNth : Mode::FlipNth;
        s.nth = std::strtoull(arg(9).c_str(), nullptr, 10);
        if (s.nth == 0) {
            if (error)
                *error = "nth must be >= 1 in '" + value + "'";
            return false;
        }
        return true;
    }
    if (value.rfind("fail-rate:", 0) == 0 ||
        value.rfind("flip-rate:", 0) == 0) {
        s.mode = value[1] == 'a' ? Mode::FailRate : Mode::FlipRate;
        char *end = nullptr;
        s.rate = std::strtod(value.c_str() + 10, &end);
        if (end == value.c_str() + 10 || s.rate < 0.0 ||
            s.rate > 1.0) {
            if (error)
                *error = "rate must be in [0,1] in '" + value + "'";
            return false;
        }
        return true;
    }
    if (error)
        *error = "unknown mode '" + value + "'";
    return false;
}

bool
parseSpec(const std::string &spec, std::vector<Schedule> &out,
          std::string *error)
{
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t semi = spec.find(';', pos);
        const std::string part = spec.substr(
            pos, semi == std::string::npos ? std::string::npos
                                           : semi - pos);
        pos = semi == std::string::npos ? spec.size() + 1 : semi + 1;
        if (part.empty())
            continue;

        Schedule s;
        bool have_mode = false;
        std::size_t p = 0;
        while (p <= part.size()) {
            const std::size_t comma = part.find(',', p);
            const std::string kv = part.substr(
                p, comma == std::string::npos ? std::string::npos
                                              : comma - p);
            p = comma == std::string::npos ? part.size() + 1
                                           : comma + 1;
            if (kv.empty())
                continue;
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos) {
                if (error)
                    *error = "expected key=value, got '" + kv + "'";
                return false;
            }
            const std::string key = kv.substr(0, eq);
            const std::string value = kv.substr(eq + 1);
            if (key == "site") {
                s.site_glob = value;
            } else if (key == "mode") {
                if (!parseMode(value, s, error))
                    return false;
                have_mode = true;
            } else if (key == "seed") {
                s.seed = std::strtoull(value.c_str(), nullptr, 10);
            } else {
                if (error)
                    *error = "unknown key '" + key + "'";
                return false;
            }
        }
        if (s.site_glob.empty() || !have_mode) {
            if (error)
                *error = "schedule needs site= and mode= ('" + part +
                         "')";
            return false;
        }
        s.rng = Rng(s.seed);
        out.push_back(std::move(s));
    }
    return true;
}

} // anonymous namespace

bool
globMatch(const std::string &pattern, const char *name)
{
    // Iterative '*' glob: on mismatch, backtrack to the last star and
    // let it swallow one more character.
    const char *p = pattern.c_str();
    const char *n = name;
    const char *star = nullptr;
    const char *star_n = nullptr;
    while (*n) {
        if (*p == *n) {
            ++p;
            ++n;
        } else if (*p == '*') {
            star = p++;
            star_n = n;
        } else if (star) {
            p = star + 1;
            n = ++star_n;
        } else {
            return false;
        }
    }
    while (*p == '*')
        ++p;
    return *p == '\0';
}

Site::Site(const char *name) : name_(name)
{
    std::lock_guard<std::mutex> lock(mtx());
    siteList().push_back(this);
}

bool
Site::evalSlow(bool flip)
{
    std::lock_guard<std::mutex> lock(mtx());
    Config &cfg = config();
    if (cfg.schedules.empty())
        return false;
    if (resolved_gen_ != cfg.generation) {
        schedule_ = 0;
        for (std::size_t i = 0; i < cfg.schedules.size(); ++i) {
            if (globMatch(cfg.schedules[i].site_glob, name_)) {
                schedule_ = i + 1;
                break;
            }
        }
        resolved_gen_ = cfg.generation;
    }
    if (schedule_ == 0)
        return false;
    Schedule &s = cfg.schedules[schedule_ - 1];
    if (s.isFlip() != flip)
        return false;

    const std::uint64_t check =
        checks_.fetch_add(1, std::memory_order_relaxed) + 1;
    bool trigger = false;
    switch (s.mode) {
      case Mode::FailAlways:
        trigger = true;
        break;
      case Mode::FailNth:
      case Mode::FlipNth:
        trigger = check == s.nth;
        break;
      case Mode::FailRate:
      case Mode::FlipRate:
        trigger = s.rng.nextDouble() < s.rate;
        break;
    }
    if (trigger) {
        triggers_.fetch_add(1, std::memory_order_relaxed);
        util::verbose("fi: injected %s at site %s (check %llu)",
                      flip ? "bit flip" : "failure", name_,
                      static_cast<unsigned long long>(check));
    }
    return trigger;
}

bool
Site::corrupt(std::vector<std::uint8_t> &buf)
{
    if (!active() || buf.empty())
        return false;
    if (!evalSlow(true))
        return false;
    // The flipped bit walks the buffer deterministically with the
    // trigger count, so repeated corruptions of a re-read artifact
    // hit different offsets.
    const std::uint64_t t = triggers();
    const std::uint64_t bit =
        (t * 0x9e3779b97f4a7c15ull) % (buf.size() * 8);
    buf[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    return true;
}

bool
configure(const std::string &spec, std::string *error)
{
    std::vector<Schedule> parsed;
    if (!parseSpec(spec, parsed, error))
        return false;
    std::lock_guard<std::mutex> lock(mtx());
    Config &cfg = config();
    cfg.schedules = std::move(parsed);
    cfg.spec = spec;
    ++cfg.generation;
    g_active.store(!cfg.schedules.empty(),
                   std::memory_order_relaxed);
    return true;
}

void
configureFromEnv()
{
    const std::string spec = envString("PGSS_FI", "");
    if (spec.empty())
        return;
    std::string error;
    if (!configure(spec, &error))
        util::warn("PGSS_FI ignored: %s", error.c_str());
    else
        util::inform("fault injection active: PGSS_FI=\"%s\"",
                     spec.c_str());
}

void
reset()
{
    std::lock_guard<std::mutex> lock(mtx());
    Config &cfg = config();
    cfg.schedules.clear();
    cfg.spec.clear();
    ++cfg.generation;
    g_active.store(false, std::memory_order_relaxed);
    for (Site *s : siteList()) {
        s->checks_.store(0, std::memory_order_relaxed);
        s->triggers_.store(0, std::memory_order_relaxed);
    }
    for (auto &[name, value] : counterMap())
        value.store(0, std::memory_order_relaxed);
}

std::vector<Site *>
sites()
{
    std::lock_guard<std::mutex> lock(mtx());
    return siteList();
}

std::string
activeSpec()
{
    std::lock_guard<std::mutex> lock(mtx());
    return config().spec;
}

std::atomic<std::uint64_t> &
counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx());
    return counterMap()[name];
}

std::vector<std::pair<std::string, std::uint64_t>>
counters()
{
    std::lock_guard<std::mutex> lock(mtx());
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counterMap().size());
    for (const auto &[name, value] : counterMap())
        out.emplace_back(name,
                         value.load(std::memory_order_relaxed));
    return out;
}

} // namespace pgss::util::fi

#include "util/table.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>

#include "util/logging.hh"

namespace pgss::util
{

Table::Table(std::string title) : title_(std::move(title))
{
}

void
Table::setHeader(std::vector<std::string> names)
{
    header_ = std::move(names);
}

void
Table::addRow(std::vector<std::string> cells)
{
    panicIf(!header_.empty() && cells.size() != header_.size(),
            "Table row width does not match header");
    rows_.push_back(std::move(cells));
}

namespace
{

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != '-' && c != '+' && c != 'e' && c != 'E' && c != '%' &&
            c != ',')
            return false;
    }
    return true;
}

} // anonymous namespace

void
Table::print(std::ostream &os) const
{
    std::size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());
    if (ncols == 0)
        return;

    std::vector<std::size_t> width(ncols, 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    auto emit_row = [&](const std::vector<std::string> &r) {
        for (std::size_t c = 0; c < ncols; ++c) {
            const std::string cell = c < r.size() ? r[c] : "";
            const bool right = looksNumeric(cell) && c > 0;
            os << (c == 0 ? "" : "  ");
            if (right) {
                os << std::string(width[c] - cell.size(), ' ') << cell;
            } else {
                os << cell << std::string(width[c] - cell.size(), ' ');
            }
        }
        os << '\n';
    };

    if (!header_.empty()) {
        emit_row(header_);
        std::size_t total = 0;
        for (std::size_t c = 0; c < ncols; ++c)
            total += width[c] + (c == 0 ? 0 : 2);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit_row(r);
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::fmtPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

std::string
Table::fmtCount(std::uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int run = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (run == 3) {
            out.push_back(',');
            run = 0;
        }
        out.push_back(*it);
        ++run;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
Table::fmtSci(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
    return buf;
}

} // namespace pgss::util

#include "util/net/http.hh"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/fi.hh"
#include "util/logging.hh"

namespace pgss::util::net
{

namespace
{
/** Chaos schedules can fail client connects without a dead server. */
fi::Site net_connect("net.connect");
} // anonymous namespace

namespace
{

constexpr std::size_t kMaxRequestBytes = 8192;
constexpr std::size_t kMaxPendingConns = 64;
constexpr int kSocketTimeoutMs = 5000;

void
setSocketTimeouts(int fd, int timeout_ms)
{
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/** Write all of @p data; false on any transport error. */
bool
sendAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

std::string
frameResponse(const HttpResponse &r)
{
    std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " +
                      httpStatusText(r.status) + "\r\n";
    out += "Content-Type: " + r.content_type + "\r\n";
    out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += r.body;
    return out;
}

/**
 * Read from @p fd until the header terminator; the telemetry
 * endpoints take no bodies, so the headers are the whole request.
 * False on timeout, transport error, or an oversized request.
 */
bool
readRequestHead(int fd, std::string &head)
{
    char buf[1024];
    while (head.find("\r\n\r\n") == std::string::npos) {
        if (head.size() > kMaxRequestBytes)
            return false;
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        head.append(buf, static_cast<std::size_t>(n));
    }
    return true;
}

/** "GET /status?x=1 HTTP/1.1" -> request; false when malformed. */
bool
parseRequestLine(const std::string &head, HttpRequest &req)
{
    const std::size_t eol = head.find("\r\n");
    if (eol == std::string::npos)
        return false;
    const std::string line = head.substr(0, eol);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos)
        return false;
    req.method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t q = target.find('?');
    if (q != std::string::npos) {
        req.query = target.substr(q + 1);
        target = target.substr(0, q);
    }
    req.target = target;
    return !req.method.empty() && !req.target.empty() &&
           req.target[0] == '/';
}

} // anonymous namespace

const char *
httpStatusText(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 503:
        return "Service Unavailable";
      default:
        return "Unknown";
    }
}

HttpServer::HttpServer(std::size_t workers)
    : n_workers_(workers < 1 ? 1 : (workers > 8 ? 8 : workers))
{
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::handle(const std::string &path, Handler handler)
{
    panicIf(running_, "HttpServer::handle after start()");
    routes_.emplace_back(path, std::move(handler));
}

bool
HttpServer::start(std::uint16_t port, std::string *error)
{
    panicIf(running_, "HttpServer::start while running");

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        if (error)
            *error = "cannot bind port " + std::to_string(port) +
                     ": " + std::strerror(errno);
        ::close(fd);
        return false;
    }

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        port_ = ntohs(bound.sin_port);
    else
        port_ = port;

    listen_fd_ = fd;
    stopping_ = false;
    running_ = true;
    accept_thread_ = std::thread([this] { acceptLoop(); });
    workers_.reserve(n_workers_);
    for (std::size_t i = 0; i < n_workers_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    return true;
}

void
HttpServer::stop()
{
    if (!running_)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    // shutdown() wakes the blocked accept(); close() alone would not
    // reliably do so on Linux.
    ::shutdown(listen_fd_, SHUT_RDWR);
    conn_ready_.notify_all();
    accept_thread_.join();
    for (std::thread &w : workers_)
        w.join();
    workers_.clear();
    ::close(listen_fd_);
    listen_fd_ = -1;
    for (int fd : pending_)
        ::close(fd);
    pending_.clear();
    running_ = false;
    port_ = 0;
}

std::uint64_t
HttpServer::requestsServed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return served_;
}

void
HttpServer::acceptLoop()
{
    for (;;) {
        const int conn = ::accept(listen_fd_, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR)
                continue;
            // stop() shut the listening socket down; also covers
            // transient accept errors once stopping.
            std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_)
                return;
            if (errno == EMFILE || errno == ENFILE)
                continue; // fd pressure: drop and keep serving
            return;
        }
        setSocketTimeouts(conn, kSocketTimeoutMs);
        bool overflow = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_) {
                ::close(conn);
                return;
            }
            if (pending_.size() >= kMaxPendingConns) {
                overflow = true;
            } else {
                pending_.push_back(conn);
            }
        }
        if (overflow) {
            HttpResponse busy;
            busy.status = 503;
            busy.body = "busy\n";
            sendAll(conn, frameResponse(busy));
            ::close(conn);
            continue;
        }
        conn_ready_.notify_one();
    }
}

void
HttpServer::workerLoop()
{
    for (;;) {
        int conn = -1;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            conn_ready_.wait(lock, [this] {
                return stopping_ || !pending_.empty();
            });
            if (stopping_ && pending_.empty())
                return;
            conn = pending_.front();
            pending_.pop_front();
        }
        serveConnection(conn);
        std::lock_guard<std::mutex> lock(mutex_);
        ++served_;
    }
}

void
HttpServer::serveConnection(int fd)
{
    std::string head;
    HttpRequest req;
    HttpResponse resp;
    if (!readRequestHead(fd, head) || !parseRequestLine(head, req)) {
        resp.status = 400;
        resp.body = "bad request\n";
    } else {
        resp = dispatch(req);
    }
    sendAll(fd, frameResponse(resp));
    ::close(fd);
}

HttpResponse
HttpServer::dispatch(const HttpRequest &req) const
{
    // HEAD shares GET's routing; the framing layer already sends the
    // full body, which curl -I tolerates for this use.
    if (req.method != "GET" && req.method != "HEAD") {
        HttpResponse r;
        r.status = 405;
        r.body = "method not allowed\n";
        return r;
    }
    for (const auto &[path, handler] : routes_)
        if (path == req.target)
            return handler(req);
    HttpResponse r;
    r.status = 404;
    r.body = "not found; endpoints: /metrics /healthz /status\n";
    return r;
}

bool
httpGet(const std::string &host, std::uint16_t port,
        const std::string &target, HttpResponse *out,
        std::string *error, int timeout_ms)
{
    if (net_connect.shouldFail()) {
        if (error)
            *error = "injected connect fault (net.connect)";
        return false;
    }

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const std::string service = std::to_string(port);
    const int gai =
        ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
    if (gai != 0) {
        if (error)
            *error = "resolve '" + host + "': " + gai_strerror(gai);
        return false;
    }

    int fd = -1;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        setSocketTimeouts(fd, timeout_ms);
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        if (error)
            *error = "cannot connect to " + host + ":" +
                     std::to_string(port);
        return false;
    }

    const std::string req = "GET " + target + " HTTP/1.1\r\nHost: " +
                            host + "\r\nConnection: close\r\n\r\n";
    if (!sendAll(fd, req)) {
        if (error)
            *error = "send failed";
        ::close(fd);
        return false;
    }

    std::string raw;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        raw.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    // "HTTP/1.1 200 OK\r\n...headers...\r\n\r\nbody"
    if (raw.rfind("HTTP/", 0) != 0) {
        if (error)
            *error = "malformed response";
        return false;
    }
    const std::size_t sp = raw.find(' ');
    if (sp == std::string::npos || sp + 4 > raw.size()) {
        if (error)
            *error = "malformed status line";
        return false;
    }
    out->status =
        static_cast<int>(std::strtol(raw.c_str() + sp + 1, nullptr, 10));
    const std::size_t body = raw.find("\r\n\r\n");
    out->body = body == std::string::npos ? "" : raw.substr(body + 4);
    const std::size_t ct = raw.find("Content-Type: ");
    if (ct != std::string::npos && ct < body) {
        const std::size_t eol = raw.find("\r\n", ct);
        out->content_type = raw.substr(ct + 14, eol - ct - 14);
    }
    return true;
}

bool
httpGetRetry(const std::string &host, std::uint16_t port,
             const std::string &target, HttpResponse *out,
             const RetryPolicy &policy, std::string *error,
             int timeout_ms)
{
    const int attempts = std::max(policy.attempts, 1);
    // splitmix64 over (seed, attempt) — deterministic jitter, no
    // shared RNG state between concurrent callers.
    std::uint64_t z = policy.jitter_seed;
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (httpGet(host, port, target, out, error, timeout_ms))
            return true;
        if (attempt + 1 == attempts)
            break;
        ++fi::counter("net.retries");
        z += 0x9e3779b97f4a7c15ull;
        std::uint64_t x = z;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        x ^= x >> 31;
        // Exponential base delay, scaled into [0.5, 1.0) so retries
        // from parallel clients spread out instead of stampeding.
        const double jitter =
            0.5 + 0.5 * (static_cast<double>(x >> 11) * 0x1.0p-53);
        const double base =
            static_cast<double>(policy.base_delay_ms) *
            static_cast<double>(1ull << std::min(attempt, 20));
        const int delay_ms = static_cast<int>(
            std::min(base * jitter,
                     static_cast<double>(policy.max_delay_ms)));
        if (delay_ms > 0)
            ::usleep(static_cast<useconds_t>(delay_ms) * 1000);
    }
    return false;
}

} // namespace pgss::util::net

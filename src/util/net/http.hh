/**
 * @file
 * Minimal blocking-socket HTTP/1.1 plumbing for the live telemetry
 * layer (DESIGN.md section 12): an embedded server that turns a
 * running simulation into a scrapeable service, and the tiny client
 * `tools/pgss_top` and the tests poll it with. Deliberately not a web
 * framework:
 *
 *  - request-per-connection ("Connection: close"), no keep-alive, no
 *    chunked transfer, no TLS — the payloads are one small text
 *    document per request and the consumers are curl, Prometheus,
 *    and pgss_top;
 *  - bounded resources: one accept thread plus a fixed worker pool
 *    pulling accepted sockets from a capped queue (overflow answers
 *    503 and closes), per-socket receive/send timeouts so a stuck
 *    peer cannot pin a worker;
 *  - exact-path GET routing only (everything else is 404/405).
 *
 * The server owns no application state: handlers capture what they
 * render. stop() (also the destructor) closes the listening socket,
 * drains the workers, and joins every thread, so the port is
 * immediately rebindable — the property the graceful-shutdown path
 * relies on.
 */

#ifndef PGSS_UTIL_NET_HTTP_HH
#define PGSS_UTIL_NET_HTTP_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace pgss::util::net
{

/** The request line, as much of it as the handlers need. */
struct HttpRequest
{
    std::string method; ///< "GET", ...
    std::string target; ///< path only; the query string is stripped
    std::string query;  ///< raw query string ("" when none)
};

/** One response; the server adds the status line and framing headers. */
struct HttpResponse
{
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
};

/** Standard reason phrase for @p status ("OK", "Not Found", ...). */
const char *httpStatusText(int status);

/**
 * The embedded telemetry server. Typical use:
 *
 *     HttpServer srv;
 *     srv.handle("/healthz", [](const HttpRequest &) { ... });
 *     std::string err;
 *     if (!srv.start(port, &err))   // port 0 = ephemeral
 *         ...;
 *     ... srv.port() is the bound port ...
 *     srv.stop();
 */
class HttpServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;

    /** @p workers handling threads; clamped to [1, 8]. */
    explicit HttpServer(std::size_t workers = 2);
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Route exact @p path (e.g. "/metrics") to @p handler. Must be
     * called before start(). */
    void handle(const std::string &path, Handler handler);

    /**
     * Bind 0.0.0.0:@p port (0 = kernel-assigned ephemeral port),
     * listen, and spawn the accept/worker threads. @return false with
     * @p *error set when the socket cannot be bound.
     */
    bool start(std::uint16_t port, std::string *error = nullptr);

    /** Close the socket and join every thread. Idempotent. */
    void stop();

    /** True between a successful start() and stop(). */
    bool running() const { return running_; }

    /** The bound port (resolves port 0), or 0 when not running. */
    std::uint16_t port() const { return port_; }

    /** Requests answered since start() (any status). */
    std::uint64_t requestsServed() const;

  private:
    void acceptLoop();
    void workerLoop();
    void serveConnection(int fd);
    HttpResponse dispatch(const HttpRequest &req) const;

    std::vector<std::pair<std::string, Handler>> routes_;

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    bool running_ = false;

    std::size_t n_workers_;
    std::thread accept_thread_;
    std::vector<std::thread> workers_;

    mutable std::mutex mutex_;
    std::condition_variable conn_ready_;
    std::deque<int> pending_; ///< accepted sockets awaiting a worker
    bool stopping_ = false;

    std::uint64_t served_ = 0; ///< guarded by mutex_
};

/**
 * Blocking GET of http://@p host:@p port@p target with a @p
 * timeout_ms connect/receive budget. @return false with @p *error set
 * on connect/transport failure; an HTTP error status is a *successful*
 * fetch (inspect @p out->status). The "net.connect" fault site can
 * inject connect failures.
 */
bool httpGet(const std::string &host, std::uint16_t port,
             const std::string &target, HttpResponse *out,
             std::string *error = nullptr, int timeout_ms = 5000);

/** Bounded-retry schedule for httpGetRetry(). */
struct RetryPolicy
{
    int attempts = 3;          ///< total tries (>= 1)
    int base_delay_ms = 100;   ///< backoff before the first retry
    int max_delay_ms = 2000;   ///< backoff ceiling
    /** Jitter stream seed; fixed default keeps runs reproducible. */
    std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

/**
 * httpGet() with bounded retries under jittered exponential backoff
 * (delay doubles per attempt, scaled by a deterministic jitter in
 * [0.5, 1.0), capped at max_delay_ms) — for transient conditions like
 * polling a server that is still binding its port. Each retry ticks
 * the "net.retries" robustness counter. @return the final attempt's
 * result; @p *error holds the last failure.
 */
bool httpGetRetry(const std::string &host, std::uint16_t port,
                  const std::string &target, HttpResponse *out,
                  const RetryPolicy &policy = {},
                  std::string *error = nullptr, int timeout_ms = 5000);

} // namespace pgss::util::net

#endif // PGSS_UTIL_NET_HTTP_HH

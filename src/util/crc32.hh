/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) for artifact
 * integrity checking. Every persistent binary artifact (checkpoints,
 * the profile cache, checkpoint-library metadata) seals each logical
 * section with a CRC so truncation and bit corruption are detected at
 * load time instead of surfacing as garbage state — see DESIGN.md
 * section 13.
 */

#ifndef PGSS_UTIL_CRC32_HH
#define PGSS_UTIL_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace pgss::util
{

/** CRC-32 of @p data (reflected, init/xorout 0xffffffff). */
std::uint32_t crc32(const void *data, std::size_t size);

/**
 * Incrementally extend @p crc (a previous crc32() result) with more
 * data: crc32Update(crc32(a), b) == crc32(a concat b).
 */
std::uint32_t crc32Update(std::uint32_t crc, const void *data,
                          std::size_t size);

} // namespace pgss::util

#endif // PGSS_UTIL_CRC32_HH

/**
 * @file
 * A small fixed-size worker pool for host-side parallelism: the bench
 * harness uses it to simulate independent workloads concurrently
 * (bench::runEntriesParallel, PGSS_JOBS). Deliberately minimal — no
 * futures, no work stealing: submit closures, then wait() for the
 * queue to drain. Determinism is the caller's job; the idiom is to
 * compute into pre-sized, index-addressed slots and emit serially
 * after wait() so output is identical to a serial run.
 *
 * A pool of size 1 runs tasks on the single worker thread in
 * submission order, which is the PGSS_JOBS=1 default; parallelism is
 * opt-in.
 */

#ifndef PGSS_UTIL_THREAD_POOL_HH
#define PGSS_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace pgss::util
{

/**
 * Name the calling thread for diagnostics (span profiler tracks,
 * log prefixes). ThreadPool names its workers "pool-<i>"; the
 * initial thread defaults to "main". Names are thread-local and
 * carry no synchronization cost for readers on the same thread.
 */
void setCurrentThreadName(const std::string &name);

/** The calling thread's name ("main" when never set). */
const std::string &currentThreadName();

/** Fixed set of workers draining one task queue. */
class ThreadPool
{
  public:
    /** Start @p workers threads (clamped to at least 1). */
    explicit ThreadPool(std::size_t workers);

    /** Waits for all submitted tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Queue @p task; it runs on some worker, FIFO dispatch. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    std::size_t workerCount() const { return workers_.size(); }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable all_done_;
    std::deque<std::function<void()>> queue_;
    std::size_t in_flight_ = 0; ///< queued + currently running
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

/**
 * Run @p body(i) for every i in [0, n), spread over @p jobs workers
 * (at most n). jobs <= 1 runs inline on the calling thread, in order,
 * with no pool at all. @p body must be safe to call concurrently for
 * distinct i when jobs > 1.
 */
void parallelFor(std::size_t n, std::size_t jobs,
                 const std::function<void(std::size_t)> &body);

} // namespace pgss::util

#endif // PGSS_UTIL_THREAD_POOL_HH

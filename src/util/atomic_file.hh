/**
 * @file
 * Crash-safe replace-on-commit file writing (DESIGN.md section 13).
 * Content accumulates in memory and commit() writes it to a temp file
 * next to the destination, fsyncs, and renames into place — so a
 * crash (or an injected fault) at any point leaves either the old
 * file or the new one, never a truncated hybrid. Every persistent
 * artifact writer (checkpoints, profile cache, run reports, timeline
 * CSVs, bench snapshots) routes through this.
 *
 * Each fallible step checks a fault-injection site; callers pass a
 * FileSites bundle to give their artifact class its own site names
 * ("ckpt.open"/"ckpt.write"/...), or inherit the generic "fs.*"
 * sites.
 */

#ifndef PGSS_UTIL_ATOMIC_FILE_HH
#define PGSS_UTIL_ATOMIC_FILE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/fi.hh"

namespace pgss::util
{

/**
 * The four fault-injection sites one artifact class's atomic writes
 * check. Declare at namespace scope with a string-literal prefix:
 *
 *     namespace { util::FileSites ckpt_sites("ckpt"); }
 */
struct FileSites
{
    explicit FileSites(const char *prefix);

    std::string open_name, write_name, fsync_name, rename_name;
    fi::Site open, write, fsync, rename;
};

/** The default "fs.*" sites. */
FileSites &fsSites();

/**
 * Accumulate-then-commit writer:
 *
 *     AtomicFileWriter out(path, &ckpt_sites);
 *     out.write(bytes.data(), bytes.size());
 *     if (!out.commit(&err)) ...   // old file still intact
 *
 * Destruction without commit() abandons the content (no filesystem
 * effect). commit() may be called once.
 */
class AtomicFileWriter
{
  public:
    explicit AtomicFileWriter(std::string path,
                              FileSites *sites = nullptr);

    void write(const void *data, std::size_t size);
    void write(const std::string &s);

    /**
     * Write temp file, fsync, rename over the destination. @return
     * false with @p *error set on any failure (real or injected); the
     * destination is untouched and the temp file is removed.
     */
    bool commit(std::string *error = nullptr);

  private:
    std::string path_;
    std::string buf_;
    FileSites *sites_;
    bool committed_ = false;
};

/** One-shot convenience: write @p size bytes of @p data to @p path
 * atomically. */
bool atomicWriteFile(const std::string &path, const void *data,
                     std::size_t size, FileSites *sites = nullptr,
                     std::string *error = nullptr);

/**
 * Read a whole file into @p out. @return false when the file does not
 * exist or a read fails (@p out is cleared). Not fault-injected —
 * corruption of loaded artifacts is injected by the owning artifact
 * class's *.read site so CRC validation sees it.
 */
bool readFileBytes(const std::string &path,
                   std::vector<std::uint8_t> &out);

/**
 * Move @p path aside as "<path>.corrupt" (replacing any previous
 * quarantine of the same artifact) so a corrupt artifact is preserved
 * for inspection but never re-loaded. @return false when the rename
 * fails (the caller should still treat the artifact as unusable).
 */
bool quarantineFile(const std::string &path);

} // namespace pgss::util

#endif // PGSS_UTIL_ATOMIC_FILE_HH

#include "util/thread_pool.hh"

#include <atomic>
#include <utility>

namespace pgss::util
{

namespace
{

thread_local std::string t_thread_name = "main";

} // anonymous namespace

void
setCurrentThreadName(const std::string &name)
{
    t_thread_name = name;
}

const std::string &
currentThreadName()
{
    return t_thread_name;
}

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == 0)
        workers = 1;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this, i] {
            setCurrentThreadName("pool-" + std::to_string(i));
            workerLoop();
        });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++in_flight_;
    }
    work_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_ready_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ with a drained queue
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --in_flight_;
        }
        all_done_.notify_all();
    }
}

void
parallelFor(std::size_t n, std::size_t jobs,
            const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (jobs > n)
        jobs = n;
    if (jobs <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    // One shared index rather than static chunks: items have wildly
    // uneven cost (workload lengths differ by orders of magnitude),
    // so dynamic dispatch keeps all workers busy until the tail.
    std::atomic<std::size_t> next{0};
    ThreadPool pool(jobs);
    for (std::size_t w = 0; w < jobs; ++w) {
        pool.submit([&] {
            while (true) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                body(i);
            }
        });
    }
    pool.wait();
}

} // namespace pgss::util

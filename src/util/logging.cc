#include "util/logging.hh"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "util/env.hh"

namespace pgss::util
{

namespace
{

// Anchored during static initialization, before main() runs, so the
// first message's stamp reflects real elapsed time — a function-local
// static would start the clock at the first log call instead.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

LogLevel
initialLevel()
{
    return parseLogLevel(envString("PGSS_LOG_LEVEL", ""),
                         LogLevel::Normal);
}

std::atomic<LogLevel> &
globalLevel()
{
    static std::atomic<LogLevel> level{initialLevel()};
    return level;
}

std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

/**
 * Format the whole line ("[ elapsed] tag: message\n") into one buffer
 * and write it with a single fwrite under the mutex, so concurrent
 * messages interleave at line granularity only.
 */
void
vreport(const char *tag, const char *fmt, va_list ap)
{
    char head[48];
    const int head_len =
        std::snprintf(head, sizeof(head), "[%9.3f] %s: ",
                      elapsedSeconds(), tag);

    va_list probe;
    va_copy(probe, ap);
    const int body_len = std::vsnprintf(nullptr, 0, fmt, probe);
    va_end(probe);
    if (body_len < 0)
        return;

    std::vector<char> line(static_cast<std::size_t>(head_len) +
                           static_cast<std::size_t>(body_len) + 2);
    std::memcpy(line.data(), head, static_cast<std::size_t>(head_len));
    std::vsnprintf(line.data() + head_len,
                   static_cast<std::size_t>(body_len) + 1, fmt, ap);
    line[line.size() - 2] = '\n';
    line[line.size() - 1] = '\0';

    const std::lock_guard<std::mutex> lock(logMutex());
    std::fwrite(line.data(), 1, line.size() - 1, stderr);
    std::fflush(stderr);
}

} // anonymous namespace

double
elapsedSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - g_process_start)
        .count();
}

LogLevel
parseLogLevel(const std::string &spec, LogLevel def)
{
    std::string s;
    for (const char c : spec)
        s += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (s == "quiet" || s == "0")
        return LogLevel::Quiet;
    if (s == "normal" || s == "1")
        return LogLevel::Normal;
    if (s == "verbose" || s == "2")
        return LogLevel::Verbose;
    return def;
}

void
setLogLevel(LogLevel level)
{
    globalLevel().store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel().load(std::memory_order_relaxed);
}

void
inform(const char *fmt, ...)
{
    if (logLevel() == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
verbose(const char *fmt, ...)
{
    if (logLevel() != LogLevel::Verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("verb", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (logLevel() == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

} // namespace pgss::util

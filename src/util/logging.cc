#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace pgss::util
{

namespace
{

LogLevel global_level = LogLevel::Normal;

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

} // anonymous namespace

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

LogLevel
logLevel()
{
    return global_level;
}

void
inform(const char *fmt, ...)
{
    if (global_level == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
verbose(const char *fmt, ...)
{
    if (global_level != LogLevel::Verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("verb", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (global_level == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

} // namespace pgss::util

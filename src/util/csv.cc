#include "util/csv.hh"

#include <ostream>

namespace pgss::util
{

CsvWriter::CsvWriter(std::ostream &os) : os_(os)
{
}

std::string
CsvWriter::escape(const std::string &cell)
{
    bool needs_quotes = false;
    for (char c : cell) {
        if (c == ',' || c == '"' || c == '\n' || c == '\r') {
            needs_quotes = true;
            break;
        }
    }
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out.push_back('"');
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << escape(cells[i]);
    }
    os_ << '\n';
}

} // namespace pgss::util

/**
 * @file
 * Aligned plain-text table printing for the benchmark harness. Every
 * figure-reproduction bench prints its series through Table so the
 * output stays machine-greppable and human-readable.
 */

#ifndef PGSS_UTIL_TABLE_HH
#define PGSS_UTIL_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pgss::util
{

/**
 * A simple column-aligned table. Add a header, then rows of cells;
 * print() right-aligns numeric-looking cells and left-aligns text.
 */
class Table
{
  public:
    /** Optional caption printed above the table. */
    explicit Table(std::string title = "");

    /** Set the column headers; defines the column count. */
    void setHeader(std::vector<std::string> names);

    /** Append a row; must match the header width if one was set. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Render to the given stream. */
    void print(std::ostream &os) const;

    /** Format a double with the given precision. */
    static std::string fmt(double v, int precision = 4);

    /** Format a double as a percentage ("12.34%"). */
    static std::string fmtPercent(double fraction, int precision = 2);

    /** Format a count with thousands grouping ("1,234,567"). */
    static std::string fmtCount(std::uint64_t v);

    /** Format in engineering notation ("1.2e+08"). */
    static std::string fmtSci(double v, int precision = 2);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pgss::util

#endif // PGSS_UTIL_TABLE_HH

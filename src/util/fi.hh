/**
 * @file
 * Deterministic fault injection (DESIGN.md section 13). Every fallible
 * operation in the persistence and networking layers passes through a
 * named `Site`; an env-driven schedule decides which checks fail:
 *
 *     PGSS_FI="site=ckpt.write,mode=fail-nth:3"
 *     PGSS_FI="site=cache.read,mode=flip-rate:0.5,seed=7"
 *     PGSS_FI="site=*.write,mode=fail-rate:0.1,seed=1;site=net.*,mode=fail-always"
 *
 * Grammar: schedules separated by ';'; each schedule is comma-
 * separated key=value pairs:
 *
 *  - site=<glob>   site name pattern ('*' matches any run of
 *                  characters); required.
 *  - mode=<m>      fail-nth:K   fail the site's Kth check (1-based)
 *                  fail-rate:P  fail each check with probability P
 *                  fail-always  fail every check
 *                  flip-nth:K / flip-rate:P  like the fail modes but
 *                  only trigger through corrupt() — they flip one bit
 *                  in a loaded buffer instead of failing an operation.
 *  - seed=N        seeds the schedule's private util::Rng (rate
 *                  modes); identical spec + identical check sequence
 *                  => identical injected faults.
 *
 * The first schedule whose glob matches a site owns that site. With no
 * schedule configured the whole framework is one predicated branch per
 * check (a relaxed atomic load of a process-global flag); sites are
 * namespace-scope statics so they register before main() and can be
 * exported through the obs stats registry (per-site check/trigger
 * counters appear under "fi." in run reports and /metrics).
 *
 * counter() interns process-wide robustness counters (quarantines,
 * rebuilds, retries) that live below the obs layer — sim/analysis code
 * bumps them and obs registers them at startup ("robust." stats).
 */

#ifndef PGSS_UTIL_FI_HH
#define PGSS_UTIL_FI_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pgss::util::fi
{

/** Process-global "any schedule active" flag (read on every check). */
extern std::atomic<bool> g_active;

/** True when a PGSS_FI schedule is configured. */
inline bool
active()
{
    return g_active.load(std::memory_order_relaxed);
}

/**
 * One named fault-injection point. Declare at namespace scope (static
 * storage) so the site exists before obs registration:
 *
 *     namespace { util::fi::Site fi_write("ckpt.write"); }
 *     ...
 *     if (fi_write.shouldFail())
 *         return false;  // injected failure
 */
class Site
{
  public:
    /** @p name has static storage (a string literal or interned). */
    explicit Site(const char *name);

    /**
     * True when the configured schedule injects a failure at this
     * check. One predicated branch when no schedule is active.
     */
    bool
    shouldFail()
    {
        if (!active())
            return false;
        return evalSlow(false);
    }

    /**
     * Corruption check for *.read sites: when a flip-mode schedule
     * triggers, flips one deterministically chosen bit of @p buf.
     * @return true when the buffer was corrupted.
     */
    bool corrupt(std::vector<std::uint8_t> &buf);

    const char *name() const { return name_; }

    /** Checks evaluated while a schedule was active. */
    std::uint64_t checks() const
    {
        return checks_.load(std::memory_order_relaxed);
    }

    /** Faults injected (failures plus bit flips). */
    std::uint64_t triggers() const
    {
        return triggers_.load(std::memory_order_relaxed);
    }

  private:
    friend void reset();

    /** @p flip selects flip-mode schedules (corrupt()) vs fail. */
    bool evalSlow(bool flip);

    const char *name_;
    std::atomic<std::uint64_t> checks_{0};
    std::atomic<std::uint64_t> triggers_{0};

    /** Index+1 of the owning schedule, 0 = none; re-resolved when the
     * configuration generation moves. Guarded by the config mutex. */
    std::size_t schedule_ = 0;
    std::uint64_t resolved_gen_ = 0;
};

/**
 * Parse and install @p spec (the PGSS_FI grammar above). An empty spec
 * deactivates injection. @return false with @p *error set on a
 * malformed spec (the previous configuration stays in force).
 */
bool configure(const std::string &spec, std::string *error = nullptr);

/** configure() from the PGSS_FI environment variable (empty = off).
 * A malformed value warns and leaves injection off. */
void configureFromEnv();

/** Deactivate injection and zero every site/robustness counter
 * (tests). Sites stay registered. */
void reset();

/** Every registered site, in registration order. */
std::vector<Site *> sites();

/** The spec most recently installed by configure() ("" when off). */
std::string activeSpec();

/**
 * Intern the process-wide robustness counter @p name (e.g.
 * "ckpt.quarantined"). The reference is stable for the process
 * lifetime; bump with fetch_add(1, std::memory_order_relaxed).
 */
std::atomic<std::uint64_t> &counter(const std::string &name);

/** Snapshot of every interned robustness counter, sorted by name. */
std::vector<std::pair<std::string, std::uint64_t>> counters();

/** '*'-glob match (used for site patterns; exposed for tests). */
bool globMatch(const std::string &pattern, const char *name);

} // namespace pgss::util::fi

#endif // PGSS_UTIL_FI_HH

#include "util/atomic_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "util/logging.hh"

namespace pgss::util
{

namespace
{

std::string
siteName(const char *prefix, const char *op)
{
    return std::string(prefix) + "." + op;
}

std::string
errnoString()
{
    return std::strerror(errno);
}

} // anonymous namespace

FileSites::FileSites(const char *prefix)
    : open_name(siteName(prefix, "open")),
      write_name(siteName(prefix, "write")),
      fsync_name(siteName(prefix, "fsync")),
      rename_name(siteName(prefix, "rename")), open(open_name.c_str()),
      write(write_name.c_str()), fsync(fsync_name.c_str()),
      rename(rename_name.c_str())
{
}

FileSites &
fsSites()
{
    static FileSites sites("fs");
    return sites;
}

AtomicFileWriter::AtomicFileWriter(std::string path, FileSites *sites)
    : path_(std::move(path)), sites_(sites ? sites : &fsSites())
{
}

void
AtomicFileWriter::write(const void *data, std::size_t size)
{
    buf_.append(static_cast<const char *>(data), size);
}

void
AtomicFileWriter::write(const std::string &s)
{
    buf_.append(s);
}

bool
AtomicFileWriter::commit(std::string *error)
{
    auto fail = [&](const std::string &what,
                    const std::string &tmp) -> bool {
        if (!tmp.empty())
            ::unlink(tmp.c_str());
        if (error)
            *error = what;
        return false;
    };
    if (committed_)
        return fail("commit() called twice for " + path_, "");
    committed_ = true;

    // The temp name carries the pid so concurrent writers of the same
    // destination (parallel bench workers, a crashed predecessor's
    // leftovers) never collide; the rename at the end is the only
    // globally visible step.
    const std::string tmp =
        path_ + ".tmp." + std::to_string(::getpid());

    if (sites_->open.shouldFail())
        return fail("injected open fault for " + tmp, "");
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0)
        return fail("cannot open " + tmp + ": " + errnoString(), "");

    std::size_t done = 0;
    bool write_ok = !sites_->write.shouldFail();
    while (write_ok && done < buf_.size()) {
        const ::ssize_t n =
            ::write(fd, buf_.data() + done, buf_.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            write_ok = false;
            break;
        }
        done += static_cast<std::size_t>(n);
    }
    if (!write_ok) {
        ::close(fd);
        return fail("cannot write " + tmp + " (" +
                        (errno ? errnoString() : "injected fault") +
                        ")",
                    tmp);
    }

    // fsync before rename: the rename must never become visible
    // pointing at data the kernel has not persisted.
    if (sites_->fsync.shouldFail() || ::fsync(fd) != 0) {
        ::close(fd);
        return fail("cannot fsync " + tmp, tmp);
    }
    if (::close(fd) != 0)
        return fail("cannot close " + tmp, tmp);

    if (sites_->rename.shouldFail() ||
        std::rename(tmp.c_str(), path_.c_str()) != 0)
        return fail("cannot rename " + tmp + " -> " + path_, tmp);
    return true;
}

bool
atomicWriteFile(const std::string &path, const void *data,
                std::size_t size, FileSites *sites, std::string *error)
{
    AtomicFileWriter w(path, sites);
    w.write(data, size);
    return w.commit(error);
}

bool
readFileBytes(const std::string &path, std::vector<std::uint8_t> &out)
{
    out.clear();
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    in.seekg(0, std::ios::end);
    const auto size = in.tellg();
    if (size < 0)
        return false;
    in.seekg(0, std::ios::beg);
    out.resize(static_cast<std::size_t>(size));
    if (size > 0)
        in.read(reinterpret_cast<char *>(out.data()), size);
    if (!in) {
        out.clear();
        return false;
    }
    return true;
}

bool
quarantineFile(const std::string &path)
{
    const std::string dest = path + ".corrupt";
    ::unlink(dest.c_str());
    if (std::rename(path.c_str(), dest.c_str()) != 0) {
        util::warn("could not quarantine %s", path.c_str());
        return false;
    }
    util::warn("quarantined corrupt artifact: %s", dest.c_str());
    return true;
}

} // namespace pgss::util

#include "util/journal.hh"

#include <cerrno>
#include <fstream>
#include <iterator>

#include <fcntl.h>
#include <unistd.h>

#include "util/fi.hh"
#include "util/logging.hh"

namespace pgss::util
{

namespace
{
fi::Site fi_append("journal.append");
} // anonymous namespace

Journal::Journal(std::string path) : path_(std::move(path)) {}

Journal::~Journal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
Journal::append(const std::string &line)
{
    if (fi_append.shouldFail())
        return false;
    if (fd_ < 0) {
        fd_ = ::open(path_.c_str(),
                     O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
        if (fd_ < 0) {
            util::warn("journal: cannot open %s", path_.c_str());
            return false;
        }
    }
    // One write() of the whole framed line: O_APPEND makes the offset
    // pick atomic, and a single write of a reasonable size is not
    // interleaved with other appenders.
    const std::string framed = line + "\n";
    std::size_t done = 0;
    while (done < framed.size()) {
        const ::ssize_t n = ::write(fd_, framed.data() + done,
                                    framed.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            util::warn("journal: write to %s failed", path_.c_str());
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    if (::fsync(fd_) != 0) {
        util::warn("journal: fsync of %s failed", path_.c_str());
        return false;
    }
    return true;
}

bool
Journal::readLines(const std::string &path,
                   std::vector<std::string> &out, std::size_t *torn)
{
    out.clear();
    if (torn)
        *torn = 0;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return true; // no journal yet: legitimately empty

    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::size_t pos = 0;
    while (pos < content.size()) {
        const std::size_t nl = content.find('\n', pos);
        if (nl == std::string::npos) {
            // Torn trailing line: a crash interrupted the append.
            if (torn)
                ++*torn;
            ++fi::counter("journal.torn_lines");
            util::warn("journal: dropping torn trailing line in %s",
                       path.c_str());
            break;
        }
        out.push_back(content.substr(pos, nl - pos));
        pos = nl + 1;
    }
    return true;
}

} // namespace pgss::util

#include "branch/btb.hh"

#include <bit>

#include "util/logging.hh"

namespace pgss::branch
{

Btb::Btb(std::uint32_t entries)
    : tags_(entries, 0), targets_(entries, 0), valid_(entries, 0),
      mask_(entries - 1)
{
    util::panicIf(!std::has_single_bit(entries),
                  "BTB size must be a power of two");
}

std::uint32_t
Btb::index(std::uint64_t pc) const
{
    return static_cast<std::uint32_t>(pc) & mask_;
}

bool
Btb::lookup(std::uint64_t pc, std::uint64_t &target) const
{
    const std::uint32_t i = index(pc);
    ++stats_.lookups;
    if (!valid_[i] || tags_[i] != pc)
        return false;
    ++stats_.hits;
    target = targets_[i];
    return true;
}

void
Btb::update(std::uint64_t pc, std::uint64_t target)
{
    const std::uint32_t i = index(pc);
    tags_[i] = pc;
    targets_[i] = target;
    valid_[i] = 1;
}

void
Btb::reset()
{
    std::fill(valid_.begin(), valid_.end(), 0);
}

Btb::State
Btb::state() const
{
    return {tags_, targets_, valid_};
}

void
Btb::setState(const State &st)
{
    util::panicIf(st.tags.size() != tags_.size(),
                  "BTB state size mismatch");
    tags_ = st.tags;
    targets_ = st.targets;
    valid_ = st.valid;
}

ReturnAddressStack::ReturnAddressStack(std::uint32_t depth)
    : stack_(depth, 0)
{
    util::panicIf(depth == 0, "RAS depth must be nonzero");
}

void
ReturnAddressStack::push(std::uint64_t addr)
{
    ++stats_.pushes;
    top_ = (top_ + 1) % stack_.size();
    stack_[top_] = addr;
    if (count_ < stack_.size())
        ++count_;
    else
        ++stats_.overflows;
}

std::uint64_t
ReturnAddressStack::pop()
{
    ++stats_.pops;
    if (count_ == 0) {
        ++stats_.underflows;
        return 0;
    }
    const std::uint64_t addr = stack_[top_];
    top_ = (top_ + stack_.size() - 1) % stack_.size();
    --count_;
    return addr;
}

void
ReturnAddressStack::reset()
{
    top_ = 0;
    count_ = 0;
}

} // namespace pgss::branch

/**
 * @file
 * Branch target buffer and return-address stack. The timing model
 * charges a misfetch penalty when a taken branch's target is absent or
 * wrong in the BTB even if the direction was predicted correctly.
 */

#ifndef PGSS_BRANCH_BTB_HH
#define PGSS_BRANCH_BTB_HH

#include <cstdint>
#include <vector>

namespace pgss::branch
{

/** Lookup/hit accounting for the BTB. */
struct BtbStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;

    /** Hit ratio; 0 when no lookups have happened. */
    double
    hitRatio() const
    {
        return lookups ? static_cast<double>(hits) / lookups : 0.0;
    }
};

/** Direct-mapped, tagged branch target buffer. */
class Btb
{
  public:
    /** @param entries table size; must be a power of two. */
    explicit Btb(std::uint32_t entries = 2048);

    /**
     * Look up the predicted target for the branch at @p pc.
     * @param[out] target predicted target when the lookup hits.
     * @return true on a tag hit.
     */
    bool lookup(std::uint64_t pc, std::uint64_t &target) const;

    /** Install/refresh the mapping pc -> target. */
    void update(std::uint64_t pc, std::uint64_t target);

    /** Accumulated lookup statistics. */
    const BtbStats &stats() const { return stats_; }

    /** Reset statistics (entries retained). */
    void clearStats() { stats_ = BtbStats(); }

    /** Clear all entries. */
    void reset();

    /** Serialized state for checkpointing. */
    struct State
    {
        std::vector<std::uint64_t> tags;
        std::vector<std::uint64_t> targets;
        std::vector<std::uint8_t> valid;
    };

    State state() const;
    void setState(const State &st);

  private:
    std::uint32_t index(std::uint64_t pc) const;

    std::vector<std::uint64_t> tags_;
    std::vector<std::uint64_t> targets_;
    std::vector<std::uint8_t> valid_;
    std::uint32_t mask_;
    mutable BtbStats stats_; ///< lookup() is logically const
};

/** Call/return traffic accounting for the RAS. */
struct RasStats
{
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::uint64_t overflows = 0;  ///< pushes that wrapped a full stack
    std::uint64_t underflows = 0; ///< pops of an empty stack
};

/** Fixed-depth return-address stack with wrap-around overflow. */
class ReturnAddressStack
{
  public:
    /** @param depth number of entries. */
    explicit ReturnAddressStack(std::uint32_t depth = 16);

    /** Push a return address at a call. */
    void push(std::uint64_t addr);

    /**
     * Pop the predicted return address.
     * @return the top entry, or 0 when empty.
     */
    std::uint64_t pop();

    /** Current occupancy. */
    std::uint32_t size() const { return count_; }

    /** Accumulated traffic statistics. */
    const RasStats &stats() const { return stats_; }

    /** Reset statistics (contents retained). */
    void clearStats() { stats_ = RasStats(); }

    /** Empty the stack. */
    void reset();

  private:
    std::vector<std::uint64_t> stack_;
    std::uint32_t top_ = 0;
    std::uint32_t count_ = 0;
    RasStats stats_;
};

} // namespace pgss::branch

#endif // PGSS_BRANCH_BTB_HH

/**
 * @file
 * Direction predictors: bimodal, gshare, and a tournament predictor
 * combining the two with a chooser table. SMARTS-style functional
 * fast-forwarding keeps these warm, so both timed and untimed paths
 * update the same state.
 */

#ifndef PGSS_BRANCH_PREDICTOR_HH
#define PGSS_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

namespace pgss::branch
{

/** Saturating 2-bit counter helpers. */
namespace counter
{
/** Predicted-taken threshold for a 2-bit counter. */
inline bool taken(std::uint8_t c) { return c >= 2; }
/** Strengthen/weaken toward the observed outcome. */
inline std::uint8_t
update(std::uint8_t c, bool was_taken)
{
    if (was_taken)
        return c < 3 ? c + 1 : 3;
    return c > 0 ? c - 1 : 0;
}
} // namespace counter

/** Common interface for direction predictors. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predict the direction of the branch at @p pc. */
    virtual bool predict(std::uint64_t pc) const = 0;

    /** Train with the resolved outcome. */
    virtual void update(std::uint64_t pc, bool taken) = 0;

    /** Reset all state to power-on values. */
    virtual void reset() = 0;

    /** Serialized table state for checkpointing. */
    virtual std::vector<std::uint8_t> state() const = 0;

    /** Restore table state captured by state(). */
    virtual void setState(const std::vector<std::uint8_t> &st) = 0;
};

/** Classic per-PC 2-bit counter table. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    /** @param entries table size; must be a power of two. */
    explicit BimodalPredictor(std::uint32_t entries = 4096);

    bool predict(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    void reset() override;
    std::vector<std::uint8_t> state() const override;
    void setState(const std::vector<std::uint8_t> &st) override;

  private:
    std::uint32_t index(std::uint64_t pc) const;
    std::vector<std::uint8_t> table_;
    std::uint32_t mask_;
};

/** Global-history XOR-indexed 2-bit counter table. */
class GsharePredictor : public DirectionPredictor
{
  public:
    /**
     * @param entries table size (power of two).
     * @param history_bits global history length.
     */
    explicit GsharePredictor(std::uint32_t entries = 4096,
                             std::uint32_t history_bits = 12);

    bool predict(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    void reset() override;
    std::vector<std::uint8_t> state() const override;
    void setState(const std::vector<std::uint8_t> &st) override;

  private:
    std::uint32_t index(std::uint64_t pc) const;
    std::vector<std::uint8_t> table_;
    std::uint32_t mask_;
    std::uint32_t history_mask_;
    std::uint32_t history_ = 0;
};

/**
 * Tournament predictor: bimodal + gshare with a 2-bit chooser table
 * (McFarling style).
 */
class TournamentPredictor : public DirectionPredictor
{
  public:
    /** @param entries size of each component table (power of two). */
    explicit TournamentPredictor(std::uint32_t entries = 4096,
                                 std::uint32_t history_bits = 12);

    bool predict(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool taken) override;
    void reset() override;
    std::vector<std::uint8_t> state() const override;
    void setState(const std::vector<std::uint8_t> &st) override;

  private:
    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    std::vector<std::uint8_t> chooser_; ///< >=2 selects gshare
    std::uint32_t mask_;
};

} // namespace pgss::branch

#endif // PGSS_BRANCH_PREDICTOR_HH

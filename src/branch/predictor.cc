#include "branch/predictor.hh"

#include <bit>

#include "util/logging.hh"

namespace pgss::branch
{

// ---------------------------------------------------------------- bimodal

BimodalPredictor::BimodalPredictor(std::uint32_t entries)
    : table_(entries, 1), mask_(entries - 1)
{
    util::panicIf(!std::has_single_bit(entries),
                  "bimodal table size must be a power of two");
}

std::uint32_t
BimodalPredictor::index(std::uint64_t pc) const
{
    return static_cast<std::uint32_t>(pc) & mask_;
}

bool
BimodalPredictor::predict(std::uint64_t pc) const
{
    return counter::taken(table_[index(pc)]);
}

void
BimodalPredictor::update(std::uint64_t pc, bool taken)
{
    std::uint8_t &c = table_[index(pc)];
    c = counter::update(c, taken);
}

void
BimodalPredictor::reset()
{
    std::fill(table_.begin(), table_.end(), 1);
}

std::vector<std::uint8_t>
BimodalPredictor::state() const
{
    return table_;
}

void
BimodalPredictor::setState(const std::vector<std::uint8_t> &st)
{
    util::panicIf(st.size() != table_.size(),
                  "bimodal state size mismatch");
    table_ = st;
}

// ----------------------------------------------------------------- gshare

GsharePredictor::GsharePredictor(std::uint32_t entries,
                                 std::uint32_t history_bits)
    : table_(entries, 1), mask_(entries - 1),
      history_mask_((1u << history_bits) - 1)
{
    util::panicIf(!std::has_single_bit(entries),
                  "gshare table size must be a power of two");
    util::panicIf(history_bits == 0 || history_bits > 30,
                  "gshare history bits out of range");
}

std::uint32_t
GsharePredictor::index(std::uint64_t pc) const
{
    return (static_cast<std::uint32_t>(pc) ^ history_) & mask_;
}

bool
GsharePredictor::predict(std::uint64_t pc) const
{
    return counter::taken(table_[index(pc)]);
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    std::uint8_t &c = table_[index(pc)];
    c = counter::update(c, taken);
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & history_mask_;
}

void
GsharePredictor::reset()
{
    std::fill(table_.begin(), table_.end(), 1);
    history_ = 0;
}

std::vector<std::uint8_t>
GsharePredictor::state() const
{
    // Append the 4 history bytes after the table.
    std::vector<std::uint8_t> st = table_;
    for (int i = 0; i < 4; ++i)
        st.push_back(static_cast<std::uint8_t>(history_ >> (8 * i)));
    return st;
}

void
GsharePredictor::setState(const std::vector<std::uint8_t> &st)
{
    util::panicIf(st.size() != table_.size() + 4,
                  "gshare state size mismatch");
    std::copy(st.begin(), st.begin() + table_.size(), table_.begin());
    history_ = 0;
    for (int i = 0; i < 4; ++i)
        history_ |= static_cast<std::uint32_t>(st[table_.size() + i])
                    << (8 * i);
}

// ------------------------------------------------------------- tournament

TournamentPredictor::TournamentPredictor(std::uint32_t entries,
                                         std::uint32_t history_bits)
    : bimodal_(entries), gshare_(entries, history_bits),
      chooser_(entries, 2), mask_(entries - 1)
{
}

bool
TournamentPredictor::predict(std::uint64_t pc) const
{
    const bool use_gshare = counter::taken(
        chooser_[static_cast<std::uint32_t>(pc) & mask_]);
    return use_gshare ? gshare_.predict(pc) : bimodal_.predict(pc);
}

void
TournamentPredictor::update(std::uint64_t pc, bool taken)
{
    const bool bim = bimodal_.predict(pc);
    const bool gsh = gshare_.predict(pc);
    std::uint8_t &choice =
        chooser_[static_cast<std::uint32_t>(pc) & mask_];
    if (bim != gsh)
        choice = counter::update(choice, gsh == taken);
    bimodal_.update(pc, taken);
    gshare_.update(pc, taken);
}

void
TournamentPredictor::reset()
{
    bimodal_.reset();
    gshare_.reset();
    std::fill(chooser_.begin(), chooser_.end(), 2);
}

std::vector<std::uint8_t>
TournamentPredictor::state() const
{
    std::vector<std::uint8_t> st = bimodal_.state();
    const auto gst = gshare_.state();
    st.insert(st.end(), gst.begin(), gst.end());
    st.insert(st.end(), chooser_.begin(), chooser_.end());
    return st;
}

void
TournamentPredictor::setState(const std::vector<std::uint8_t> &st)
{
    const std::size_t bim_size = chooser_.size();
    const std::size_t gsh_size = chooser_.size() + 4;
    util::panicIf(st.size() != bim_size + gsh_size + chooser_.size(),
                  "tournament state size mismatch");
    bimodal_.setState(
        {st.begin(), st.begin() + static_cast<long>(bim_size)});
    gshare_.setState({st.begin() + static_cast<long>(bim_size),
                      st.begin() + static_cast<long>(bim_size + gsh_size)});
    std::copy(st.begin() + static_cast<long>(bim_size + gsh_size),
              st.end(), chooser_.begin());
}

} // namespace pgss::branch

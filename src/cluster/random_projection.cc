#include "cluster/random_projection.hh"

#include "util/random.hh"

namespace pgss::cluster
{

RandomProjection::RandomProjection(std::uint32_t dims,
                                   std::uint64_t seed)
    : dims_(dims), seed_(seed)
{
}

std::vector<double>
RandomProjection::project(const bbv::SparseBbv &v) const
{
    std::vector<double> out(dims_, 0.0);
    for (const auto &[addr, weight] : v) {
        // Deterministic projection row for this feature.
        util::Rng rng(seed_ ^ (addr * 0x9e3779b97f4a7c15ull));
        for (std::uint32_t d = 0; d < dims_; ++d)
            out[d] += weight * rng.nextGaussian();
    }
    return out;
}

std::vector<std::vector<double>>
RandomProjection::projectAll(const std::vector<bbv::SparseBbv> &vs) const
{
    std::vector<std::vector<double>> out;
    out.reserve(vs.size());
    for (const auto &v : vs)
        out.push_back(project(v));
    return out;
}

} // namespace pgss::cluster

#include "cluster/kmeans.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/spans.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace pgss::cluster
{

namespace
{

double
sqDist(const std::vector<double> &a, const std::vector<double> &b)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

/** k-means++ seeding. */
std::vector<std::vector<double>>
seedCentroids(const std::vector<std::vector<double>> &points,
              std::uint32_t k, util::Rng &rng)
{
    std::vector<std::vector<double>> centroids;
    centroids.reserve(k);
    centroids.push_back(points[rng.nextBounded(points.size())]);

    std::vector<double> d2(points.size(),
                           std::numeric_limits<double>::max());
    while (centroids.size() < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            d2[i] = std::min(d2[i], sqDist(points[i],
                                           centroids.back()));
            total += d2[i];
        }
        if (total <= 0.0) {
            // All remaining points coincide with chosen centroids.
            centroids.push_back(
                points[rng.nextBounded(points.size())]);
            continue;
        }
        double pick = rng.nextDouble() * total;
        std::size_t chosen = points.size() - 1;
        for (std::size_t i = 0; i < points.size(); ++i) {
            pick -= d2[i];
            if (pick <= 0.0) {
                chosen = i;
                break;
            }
        }
        centroids.push_back(points[chosen]);
    }
    return centroids;
}

} // anonymous namespace

KMeansResult
kMeans(const std::vector<std::vector<double>> &points, std::uint32_t k,
       std::uint32_t max_iterations, std::uint64_t seed)
{
    PGSS_SPAN("cluster.kmeans", Cluster);
    util::panicIf(points.empty(), "kMeans on an empty point set");
    const std::size_t n = points.size();
    const std::size_t dims = points[0].size();
    for (const auto &p : points)
        util::panicIf(p.size() != dims,
                      "kMeans points have mixed dimensionality");
    k = std::min<std::uint32_t>(k, static_cast<std::uint32_t>(n));
    util::panicIf(k == 0, "kMeans requires k >= 1");

    util::Rng rng(seed);
    KMeansResult res;
    res.centroids = seedCentroids(points, k, rng);
    res.assignment.assign(n, 0);

    for (std::uint32_t iter = 0; iter < max_iterations; ++iter) {
        ++res.iterations;
        bool changed = false;

        // Assign.
        for (std::size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::max();
            std::uint32_t best_c = 0;
            for (std::uint32_t c = 0; c < k; ++c) {
                const double d = sqDist(points[i], res.centroids[c]);
                if (d < best) {
                    best = d;
                    best_c = c;
                }
            }
            if (res.assignment[i] != best_c) {
                res.assignment[i] = best_c;
                changed = true;
            }
        }

        // Update.
        std::vector<std::vector<double>> sums(
            k, std::vector<double>(dims, 0.0));
        std::vector<std::uint32_t> counts(k, 0);
        for (std::size_t i = 0; i < n; ++i) {
            ++counts[res.assignment[i]];
            for (std::size_t d = 0; d < dims; ++d)
                sums[res.assignment[i]][d] += points[i][d];
        }
        for (std::uint32_t c = 0; c < k; ++c) {
            if (counts[c] == 0) {
                // Re-seed an empty cluster from the point farthest
                // from its assigned centroid.
                double worst = -1.0;
                std::size_t far = 0;
                for (std::size_t i = 0; i < n; ++i) {
                    const double d = sqDist(
                        points[i], res.centroids[res.assignment[i]]);
                    if (d > worst) {
                        worst = d;
                        far = i;
                    }
                }
                res.centroids[c] = points[far];
                res.assignment[far] = c;
                changed = true;
                continue;
            }
            for (std::size_t d = 0; d < dims; ++d)
                res.centroids[c][d] = sums[c][d] / counts[c];
        }

        if (!changed)
            break;
    }

    // Final statistics: sizes, inertia, representatives.
    res.sizes.assign(k, 0);
    res.representatives.assign(k, 0);
    std::vector<double> best_d(k, std::numeric_limits<double>::max());
    res.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t c = res.assignment[i];
        const double d = sqDist(points[i], res.centroids[c]);
        res.inertia += d;
        ++res.sizes[c];
        if (d < best_d[c]) {
            best_d[c] = d;
            res.representatives[c] = static_cast<std::uint32_t>(i);
        }
    }
    return res;
}

double
bicScore(const std::vector<std::vector<double>> &points,
         const KMeansResult &clustering)
{
    const double n = static_cast<double>(points.size());
    const double d = static_cast<double>(points[0].size());
    const double k = static_cast<double>(clustering.centroids.size());
    if (n <= k)
        return -std::numeric_limits<double>::infinity();

    // Spherical Gaussian MLE of the shared variance.
    const double variance =
        std::max(clustering.inertia / (d * (n - k)), 1e-12);

    double log_likelihood = 0.0;
    for (std::uint32_t c = 0; c < clustering.centroids.size(); ++c) {
        const double nc = clustering.sizes[c];
        if (nc <= 0.0)
            continue;
        log_likelihood += nc * std::log(nc / n);
        log_likelihood -= nc * d / 2.0 *
                          std::log(2.0 * M_PI * variance);
        log_likelihood -= (nc - k / clustering.centroids.size()) *
                          d / 2.0;
    }
    const double params = k * (d + 1.0);
    return log_likelihood - params / 2.0 * std::log(n);
}

std::uint32_t
pickK(const std::vector<std::vector<double>> &points,
      const std::vector<std::uint32_t> &candidates, double threshold,
      std::uint64_t seed)
{
    util::panicIf(candidates.empty(), "pickK with no candidates");
    std::vector<double> scores;
    scores.reserve(candidates.size());
    double best = -std::numeric_limits<double>::infinity();
    for (std::uint32_t k : candidates) {
        const KMeansResult r = kMeans(points, k, 100, seed);
        scores.push_back(bicScore(points, r));
        best = std::max(best, scores.back());
    }
    // Smallest k reaching the threshold fraction of the best score.
    // BIC scores are negative; "fraction" follows SimPoint's usage:
    // a score within (1 - threshold) of the observed range.
    double worst = best;
    for (double s : scores)
        worst = std::min(worst, s);
    const double cutoff = worst + threshold * (best - worst);
    for (std::size_t i = 0; i < candidates.size(); ++i)
        if (scores[i] >= cutoff)
            return candidates[i];
    return candidates.back();
}

} // namespace pgss::cluster

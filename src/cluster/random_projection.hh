/**
 * @file
 * Random projection of sparse basic-block vectors into a small dense
 * space, as SimPoint 3.0 does before clustering (it projects BBVs to
 * 15 dimensions). The projection row for each feature (branch
 * address) is generated deterministically from the feature id, so
 * vectors can be projected without materialising a global dictionary.
 */

#ifndef PGSS_CLUSTER_RANDOM_PROJECTION_HH
#define PGSS_CLUSTER_RANDOM_PROJECTION_HH

#include <cstdint>
#include <vector>

#include "bbv/full_bbv.hh"

namespace pgss::cluster
{

/** Projects sparse BBVs to @p dims dense dimensions. */
class RandomProjection
{
  public:
    /**
     * @param dims output dimensionality (SimPoint uses 15).
     * @param seed projection seed (fixed per analysis).
     */
    explicit RandomProjection(std::uint32_t dims = 15,
                              std::uint64_t seed = 0x51f15eed);

    /** Project one sparse vector. */
    std::vector<double> project(const bbv::SparseBbv &v) const;

    /** Project a batch. */
    std::vector<std::vector<double>>
    projectAll(const std::vector<bbv::SparseBbv> &vs) const;

    std::uint32_t dims() const { return dims_; }

  private:
    std::uint32_t dims_;
    std::uint64_t seed_;
};

} // namespace pgss::cluster

#endif // PGSS_CLUSTER_RANDOM_PROJECTION_HH

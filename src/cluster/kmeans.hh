/**
 * @file
 * Lloyd's k-means with k-means++ seeding, the clustering engine
 * behind the offline SimPoint baseline. Deterministic given a seed;
 * empty clusters are re-seeded from the point farthest from its
 * centroid.
 */

#ifndef PGSS_CLUSTER_KMEANS_HH
#define PGSS_CLUSTER_KMEANS_HH

#include <cstdint>
#include <vector>

namespace pgss::cluster
{

/** Result of one clustering. */
struct KMeansResult
{
    std::vector<std::uint32_t> assignment;       ///< point -> cluster
    std::vector<std::vector<double>> centroids;  ///< [k][dims]
    std::vector<std::uint32_t> sizes;            ///< points per cluster
    double inertia = 0.0; ///< sum of squared distances to centroids
    std::uint32_t iterations = 0;

    /**
     * Index of the member point closest to each centroid — the
     * "simulation point" SimPoint details for the cluster.
     */
    std::vector<std::uint32_t> representatives;
};

/**
 * Cluster @p points into @p k clusters.
 * @param points dense points, all the same dimensionality.
 * @param k cluster count; clamped to the number of points.
 */
KMeansResult kMeans(const std::vector<std::vector<double>> &points,
                    std::uint32_t k, std::uint32_t max_iterations = 100,
                    std::uint64_t seed = 0xc1a55e5);

/**
 * Bayesian information criterion of a clustering under a spherical
 * Gaussian model (the x-means formulation SimPoint 3.0 uses to pick
 * k). Larger is better.
 */
double bicScore(const std::vector<std::vector<double>> &points,
                const KMeansResult &clustering);

/**
 * SimPoint 3.0's k selection: cluster at each k in @p candidates and
 * return the smallest k whose BIC reaches @p threshold (default 0.9)
 * of the best BIC observed.
 */
std::uint32_t
pickK(const std::vector<std::vector<double>> &points,
      const std::vector<std::uint32_t> &candidates,
      double threshold = 0.9, std::uint64_t seed = 0xc1a55e5);

} // namespace pgss::cluster

#endif // PGSS_CLUSTER_KMEANS_HH

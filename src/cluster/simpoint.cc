#include "cluster/simpoint.hh"

#include "cluster/random_projection.hh"
#include "util/logging.hh"

namespace pgss::cluster
{

SimPointSelection
selectSimPoints(const std::vector<bbv::SparseBbv> &interval_bbvs,
                std::uint32_t k, std::uint32_t dims, std::uint64_t seed)
{
    util::panicIf(interval_bbvs.empty(),
                  "selectSimPoints with no intervals");

    const RandomProjection proj(dims, seed);
    const auto points = proj.projectAll(interval_bbvs);

    SimPointSelection sel;
    sel.clustering = kMeans(points, k, 100, seed);
    const std::size_t n = interval_bbvs.size();
    const auto clusters =
        static_cast<std::uint32_t>(sel.clustering.centroids.size());
    sel.rep_intervals = sel.clustering.representatives;
    sel.weights.resize(clusters);
    for (std::uint32_t c = 0; c < clusters; ++c)
        sel.weights[c] =
            static_cast<double>(sel.clustering.sizes[c]) /
            static_cast<double>(n);
    return sel;
}

} // namespace pgss::cluster

/**
 * @file
 * The offline SimPoint analysis: project per-interval BBVs, cluster
 * with k-means, and select one representative interval per cluster
 * with a weight equal to the cluster's share of execution. Program
 * performance is then estimated as the weighted sum of the
 * representatives' detailed-simulation results.
 */

#ifndef PGSS_CLUSTER_SIMPOINT_HH
#define PGSS_CLUSTER_SIMPOINT_HH

#include <cstdint>
#include <vector>

#include "bbv/full_bbv.hh"
#include "cluster/kmeans.hh"

namespace pgss::cluster
{

/** The chosen simulation points. */
struct SimPointSelection
{
    std::vector<std::uint32_t> rep_intervals; ///< one per cluster
    std::vector<double> weights;              ///< sum to 1
    KMeansResult clustering;
};

/**
 * Run the SimPoint selection.
 * @param interval_bbvs per-interval full BBVs, in execution order.
 * @param k number of clusters (phases).
 * @param dims random-projection dimensionality.
 * @param seed clustering/projection seed.
 */
SimPointSelection
selectSimPoints(const std::vector<bbv::SparseBbv> &interval_bbvs,
                std::uint32_t k, std::uint32_t dims = 15,
                std::uint64_t seed = 0xc1a55e5);

} // namespace pgss::cluster

#endif // PGSS_CLUSTER_SIMPOINT_HH

/**
 * @file
 * A complete simulated program: pre-decoded instruction memory, a data
 * footprint, and basic-block metadata produced by the workload
 * builder. Instruction "addresses" used by the branch predictors and
 * BBV hash are byte addresses (index << 2) to mimic real 32-bit
 * instruction encodings.
 */

#ifndef PGSS_ISA_PROGRAM_HH
#define PGSS_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace pgss::isa
{

/** Convert an instruction index to its byte address. */
inline std::uint64_t
instAddr(std::uint64_t index)
{
    return index << 2;
}

/**
 * One named region of the data footprint, as declared by the workload
 * builder's allocations. Static address arithmetic in the code is
 * expected to stay inside some declared segment; the progcheck memory
 * pass enforces this.
 */
struct DataSegment
{
    std::string label;        ///< allocation label ("seg<n>" if unnamed)
    std::uint64_t base = 0;   ///< first byte address
    std::uint64_t bytes = 0;  ///< extent
};

/**
 * BTB-style static target set for one indirect jump: the complete set
 * of instruction indices the jump can transfer to, declared by the
 * program builder (for subroutine returns: every call site + 1). The
 * CFG builder uses these as the jump's successor edges.
 */
struct IndirectTargetSet
{
    std::uint32_t at = 0;               ///< index of the Jalr
    std::vector<std::uint32_t> targets; ///< possible target indices
};

/** A runnable program. */
struct Program
{
    std::string name;                 ///< workload name
    std::vector<Instruction> code;    ///< instruction memory
    std::uint64_t data_bytes = 0;     ///< data segment size
    std::uint64_t entry = 0;          ///< first instruction index

    /** Declared data segments, ascending by base; may be empty for
     *  hand-assembled programs (checks then fall back to the whole
     *  [0, data_bytes) footprint). */
    std::vector<DataSegment> segments;

    /** Declared indirect-jump target sets, ascending by index. */
    std::vector<IndirectTargetSet> indirect_targets;

    /**
     * Initial data-memory image (64-bit words), host-initialised by
     * the workload builder; sized data_bytes / 8.
     */
    std::vector<std::uint64_t> data_words;

    /**
     * Instruction indices that begin a basic block, in ascending
     * order. Populated by the ProgramBuilder; informational.
     */
    std::vector<std::uint32_t> bb_starts;

    /** Number of static instructions. */
    std::size_t size() const { return code.size(); }
};

} // namespace pgss::isa

#endif // PGSS_ISA_PROGRAM_HH

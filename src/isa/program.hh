/**
 * @file
 * A complete simulated program: pre-decoded instruction memory, a data
 * footprint, and basic-block metadata produced by the workload
 * builder. Instruction "addresses" used by the branch predictors and
 * BBV hash are byte addresses (index << 2) to mimic real 32-bit
 * instruction encodings.
 */

#ifndef PGSS_ISA_PROGRAM_HH
#define PGSS_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace pgss::isa
{

/** Convert an instruction index to its byte address. */
inline std::uint64_t
instAddr(std::uint64_t index)
{
    return index << 2;
}

/** A runnable program. */
struct Program
{
    std::string name;                 ///< workload name
    std::vector<Instruction> code;    ///< instruction memory
    std::uint64_t data_bytes = 0;     ///< data segment size
    std::uint64_t entry = 0;          ///< first instruction index

    /**
     * Initial data-memory image (64-bit words), host-initialised by
     * the workload builder; sized data_bytes / 8.
     */
    std::vector<std::uint64_t> data_words;

    /**
     * Instruction indices that begin a basic block, in ascending
     * order. Populated by the ProgramBuilder; informational.
     */
    std::vector<std::uint32_t> bb_starts;

    /** Number of static instructions. */
    std::size_t size() const { return code.size(); }
};

} // namespace pgss::isa

#endif // PGSS_ISA_PROGRAM_HH

/**
 * @file
 * Pre-decoded instruction representation. Programs are stored as a
 * flat vector of Instruction, indexed by "pc" = instruction index; the
 * functional core interprets them directly, so there is no decode cost
 * on the simulator's hot path.
 */

#ifndef PGSS_ISA_INSTRUCTION_HH
#define PGSS_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "isa/opcodes.hh"

namespace pgss::isa
{

/** Number of general-purpose registers; register 0 reads as zero. */
constexpr int num_regs = 32;

/** Register index of the hard-wired zero register. */
constexpr int reg_zero = 0;

/**
 * One pre-decoded instruction. Branch/jump targets live in imm as an
 * absolute instruction index; memory instructions use imm as a signed
 * byte offset added to regs[rs1].
 */
struct Instruction
{
    Opcode op = Opcode::Nop; ///< operation
    std::uint8_t rd = 0;     ///< destination register
    std::uint8_t rs1 = 0;    ///< first source register
    std::uint8_t rs2 = 0;    ///< second source register
    std::int64_t imm = 0;    ///< immediate / offset / target index

    /** Static property lookup for this instruction's opcode. */
    const OpInfo &info() const { return opInfo(op); }
};

/**
 * Render @p inst as text, e.g. "beq r3, r0, -> 1024".
 * @param pc the instruction's own index (annotated in the output).
 */
std::string disassemble(const Instruction &inst, std::uint64_t pc);

/**
 * Control-flow behaviour of one decoded instruction, as the static
 * analyses (src/progcheck) and the CFG builder need it.
 */
enum class CtrlKind : std::uint8_t
{
    None,         ///< always falls through to pc+1
    CondBranch,   ///< falls through or jumps to the static target
    DirectJump,   ///< always jumps to the static target (Jal)
    IndirectJump, ///< target is regs[rs1] + imm (Jalr)
    Halt,         ///< execution stops; no successor
};

/** Classify @p inst's control-flow behaviour. */
CtrlKind ctrlKind(const Instruction &inst);

/** True when execution can continue at pc+1 after @p inst. */
bool fallsThrough(const Instruction &inst);

/**
 * True when @p inst has a statically-known transfer target (a
 * conditional branch or direct jump); the target index is inst.imm.
 */
bool hasStaticTarget(const Instruction &inst);

/** True when @p inst reads data memory. */
bool readsMemory(const Instruction &inst);

/** True when @p inst writes data memory. */
bool writesMemory(const Instruction &inst);

/**
 * True when @p inst is a subroutine call: a direct jump that records
 * the return index in a real register.
 */
bool isCall(const Instruction &inst);

/**
 * True when @p inst is a subroutine return: an indirect jump through
 * @p link_reg with no immediate offset that discards the return index.
 */
bool isReturn(const Instruction &inst, std::uint8_t link_reg);

} // namespace pgss::isa

#endif // PGSS_ISA_INSTRUCTION_HH

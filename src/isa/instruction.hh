/**
 * @file
 * Pre-decoded instruction representation. Programs are stored as a
 * flat vector of Instruction, indexed by "pc" = instruction index; the
 * functional core interprets them directly, so there is no decode cost
 * on the simulator's hot path.
 */

#ifndef PGSS_ISA_INSTRUCTION_HH
#define PGSS_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "isa/opcodes.hh"

namespace pgss::isa
{

/** Number of general-purpose registers; register 0 reads as zero. */
constexpr int num_regs = 32;

/** Register index of the hard-wired zero register. */
constexpr int reg_zero = 0;

/**
 * One pre-decoded instruction. Branch/jump targets live in imm as an
 * absolute instruction index; memory instructions use imm as a signed
 * byte offset added to regs[rs1].
 */
struct Instruction
{
    Opcode op = Opcode::Nop; ///< operation
    std::uint8_t rd = 0;     ///< destination register
    std::uint8_t rs1 = 0;    ///< first source register
    std::uint8_t rs2 = 0;    ///< second source register
    std::int64_t imm = 0;    ///< immediate / offset / target index

    /** Static property lookup for this instruction's opcode. */
    const OpInfo &info() const { return opInfo(op); }
};

/**
 * Render @p inst as text, e.g. "beq r3, r0, -> 1024".
 * @param pc the instruction's own index (annotated in the output).
 */
std::string disassemble(const Instruction &inst, std::uint64_t pc);

} // namespace pgss::isa

#endif // PGSS_ISA_INSTRUCTION_HH

#include "isa/instruction.hh"

#include <cstdio>

namespace pgss::isa
{

std::string
disassemble(const Instruction &inst, std::uint64_t pc)
{
    const OpInfo &info = inst.info();
    char buf[96];
    if (info.is_branch) {
        std::snprintf(buf, sizeof(buf), "%6lu: %-5s r%u, r%u, -> %ld",
                      static_cast<unsigned long>(pc),
                      std::string(info.mnemonic).c_str(), inst.rs1,
                      inst.rs2, static_cast<long>(inst.imm));
    } else if (info.is_jump) {
        if (inst.op == Opcode::Jalr) {
            std::snprintf(buf, sizeof(buf),
                          "%6lu: %-5s r%u, r%u + %ld",
                          static_cast<unsigned long>(pc),
                          std::string(info.mnemonic).c_str(), inst.rd,
                          inst.rs1, static_cast<long>(inst.imm));
        } else {
            std::snprintf(buf, sizeof(buf), "%6lu: %-5s r%u, -> %ld",
                          static_cast<unsigned long>(pc),
                          std::string(info.mnemonic).c_str(), inst.rd,
                          static_cast<long>(inst.imm));
        }
    } else if (info.op_class == OpClass::MemRead) {
        std::snprintf(buf, sizeof(buf), "%6lu: %-5s r%u, %ld(r%u)",
                      static_cast<unsigned long>(pc),
                      std::string(info.mnemonic).c_str(), inst.rd,
                      static_cast<long>(inst.imm), inst.rs1);
    } else if (info.op_class == OpClass::MemWrite) {
        std::snprintf(buf, sizeof(buf), "%6lu: %-5s r%u, %ld(r%u)",
                      static_cast<unsigned long>(pc),
                      std::string(info.mnemonic).c_str(), inst.rs2,
                      static_cast<long>(inst.imm), inst.rs1);
    } else if (info.op_class == OpClass::NoOp) {
        std::snprintf(buf, sizeof(buf), "%6lu: %s",
                      static_cast<unsigned long>(pc),
                      std::string(info.mnemonic).c_str());
    } else if (info.reads_rs2) {
        std::snprintf(buf, sizeof(buf), "%6lu: %-5s r%u, r%u, r%u",
                      static_cast<unsigned long>(pc),
                      std::string(info.mnemonic).c_str(), inst.rd,
                      inst.rs1, inst.rs2);
    } else {
        std::snprintf(buf, sizeof(buf), "%6lu: %-5s r%u, r%u, %ld",
                      static_cast<unsigned long>(pc),
                      std::string(info.mnemonic).c_str(), inst.rd,
                      inst.rs1, static_cast<long>(inst.imm));
    }
    return buf;
}

CtrlKind
ctrlKind(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        return CtrlKind::CondBranch;
      case Opcode::Jal:
        return CtrlKind::DirectJump;
      case Opcode::Jalr:
        return CtrlKind::IndirectJump;
      case Opcode::Halt:
        return CtrlKind::Halt;
      default:
        return CtrlKind::None;
    }
}

bool
fallsThrough(const Instruction &inst)
{
    const CtrlKind kind = ctrlKind(inst);
    return kind == CtrlKind::None || kind == CtrlKind::CondBranch;
}

bool
hasStaticTarget(const Instruction &inst)
{
    const CtrlKind kind = ctrlKind(inst);
    return kind == CtrlKind::CondBranch || kind == CtrlKind::DirectJump;
}

bool
readsMemory(const Instruction &inst)
{
    return inst.info().op_class == OpClass::MemRead;
}

bool
writesMemory(const Instruction &inst)
{
    return inst.info().op_class == OpClass::MemWrite;
}

bool
isCall(const Instruction &inst)
{
    return inst.op == Opcode::Jal && inst.rd != reg_zero;
}

bool
isReturn(const Instruction &inst, std::uint8_t link_reg)
{
    return inst.op == Opcode::Jalr && inst.rd == reg_zero &&
           inst.rs1 == link_reg && inst.imm == 0;
}

} // namespace pgss::isa

#include "isa/instruction.hh"

#include <cstdio>

namespace pgss::isa
{

std::string
disassemble(const Instruction &inst, std::uint64_t pc)
{
    const OpInfo &info = inst.info();
    char buf[96];
    if (info.is_branch) {
        std::snprintf(buf, sizeof(buf), "%6lu: %-5s r%u, r%u, -> %ld",
                      static_cast<unsigned long>(pc),
                      std::string(info.mnemonic).c_str(), inst.rs1,
                      inst.rs2, static_cast<long>(inst.imm));
    } else if (info.is_jump) {
        if (inst.op == Opcode::Jalr) {
            std::snprintf(buf, sizeof(buf),
                          "%6lu: %-5s r%u, r%u + %ld",
                          static_cast<unsigned long>(pc),
                          std::string(info.mnemonic).c_str(), inst.rd,
                          inst.rs1, static_cast<long>(inst.imm));
        } else {
            std::snprintf(buf, sizeof(buf), "%6lu: %-5s r%u, -> %ld",
                          static_cast<unsigned long>(pc),
                          std::string(info.mnemonic).c_str(), inst.rd,
                          static_cast<long>(inst.imm));
        }
    } else if (info.op_class == OpClass::MemRead) {
        std::snprintf(buf, sizeof(buf), "%6lu: %-5s r%u, %ld(r%u)",
                      static_cast<unsigned long>(pc),
                      std::string(info.mnemonic).c_str(), inst.rd,
                      static_cast<long>(inst.imm), inst.rs1);
    } else if (info.op_class == OpClass::MemWrite) {
        std::snprintf(buf, sizeof(buf), "%6lu: %-5s r%u, %ld(r%u)",
                      static_cast<unsigned long>(pc),
                      std::string(info.mnemonic).c_str(), inst.rs2,
                      static_cast<long>(inst.imm), inst.rs1);
    } else if (info.op_class == OpClass::NoOp) {
        std::snprintf(buf, sizeof(buf), "%6lu: %s",
                      static_cast<unsigned long>(pc),
                      std::string(info.mnemonic).c_str());
    } else if (info.reads_rs2) {
        std::snprintf(buf, sizeof(buf), "%6lu: %-5s r%u, r%u, r%u",
                      static_cast<unsigned long>(pc),
                      std::string(info.mnemonic).c_str(), inst.rd,
                      inst.rs1, inst.rs2);
    } else {
        std::snprintf(buf, sizeof(buf), "%6lu: %-5s r%u, r%u, %ld",
                      static_cast<unsigned long>(pc),
                      std::string(info.mnemonic).c_str(), inst.rd,
                      inst.rs1, static_cast<long>(inst.imm));
    }
    return buf;
}

} // namespace pgss::isa

#include "isa/opcodes.hh"

#include <array>

#include "util/logging.hh"

namespace pgss::isa
{

namespace
{

constexpr std::array<OpInfo, num_opcodes> op_table = {{
    // mnemonic  class              rs1    rs2    rd     br     jmp
    {"add",   OpClass::IntAlu,   true,  true,  true,  false, false},
    {"sub",   OpClass::IntAlu,   true,  true,  true,  false, false},
    {"and",   OpClass::IntAlu,   true,  true,  true,  false, false},
    {"or",    OpClass::IntAlu,   true,  true,  true,  false, false},
    {"xor",   OpClass::IntAlu,   true,  true,  true,  false, false},
    {"sll",   OpClass::IntAlu,   true,  true,  true,  false, false},
    {"srl",   OpClass::IntAlu,   true,  true,  true,  false, false},
    {"sra",   OpClass::IntAlu,   true,  true,  true,  false, false},
    {"slt",   OpClass::IntAlu,   true,  true,  true,  false, false},
    {"addi",  OpClass::IntAlu,   true,  false, true,  false, false},
    {"andi",  OpClass::IntAlu,   true,  false, true,  false, false},
    {"ori",   OpClass::IntAlu,   true,  false, true,  false, false},
    {"xori",  OpClass::IntAlu,   true,  false, true,  false, false},
    {"slti",  OpClass::IntAlu,   true,  false, true,  false, false},
    {"lui",   OpClass::IntAlu,   false, false, true,  false, false},
    {"mul",   OpClass::IntMul,   true,  true,  true,  false, false},
    {"div",   OpClass::IntDiv,   true,  true,  true,  false, false},
    {"fadd",  OpClass::FpAdd,    true,  true,  true,  false, false},
    {"fmul",  OpClass::FpMul,    true,  true,  true,  false, false},
    {"fdiv",  OpClass::FpDiv,    true,  true,  true,  false, false},
    {"ld",    OpClass::MemRead,  true,  false, true,  false, false},
    {"st",    OpClass::MemWrite, true,  true,  false, false, false},
    {"beq",   OpClass::Control,  true,  true,  false, true,  false},
    {"bne",   OpClass::Control,  true,  true,  false, true,  false},
    {"blt",   OpClass::Control,  true,  true,  false, true,  false},
    {"bge",   OpClass::Control,  true,  true,  false, true,  false},
    {"jal",   OpClass::Control,  false, false, true,  false, true},
    {"jalr",  OpClass::Control,  true,  false, true,  false, true},
    {"nop",   OpClass::NoOp,     false, false, false, false, false},
    {"halt",  OpClass::NoOp,     false, false, false, false, false},
}};

} // anonymous namespace

const OpInfo &
opInfo(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    util::panicIf(idx >= num_opcodes, "opInfo: opcode out of range");
    return op_table[idx];
}

std::string_view
mnemonic(Opcode op)
{
    return opInfo(op).mnemonic;
}

} // namespace pgss::isa

/**
 * @file
 * Opcode set of the PGSS-Sim RISC ISA. The ISA mirrors the flavour of
 * machine the paper simulated with the IMPACT tool chain: a simple
 * load/store RISC with integer, floating-point, memory, and control
 * operations. It is deliberately small — just enough for the synthetic
 * workload generator to express realistic kernels — but fully executed,
 * not traced.
 */

#ifndef PGSS_ISA_OPCODES_HH
#define PGSS_ISA_OPCODES_HH

#include <cstdint>
#include <string_view>

namespace pgss::isa
{

/** Operation codes. Register width is 64 bits throughout. */
enum class Opcode : std::uint8_t
{
    // Integer ALU, register-register.
    Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt,
    // Integer ALU, register-immediate.
    Addi, Andi, Ori, Xori, Slti, Lui,
    // Long-latency integer.
    Mul, Div,
    // Floating point (operands are IEEE-754 doubles held in the
    // integer register file as bit patterns).
    Fadd, Fmul, Fdiv,
    // Memory: 64-bit word load/store, address = regs[rs1] + imm
    // (byte address, must be 8-byte aligned).
    Ld, St,
    // Control: conditional branches compare rs1 against rs2; target is
    // an absolute instruction index in imm.
    Beq, Bne, Blt, Bge,
    // Unconditional: Jal writes the return index to rd and jumps to
    // imm; Jalr jumps to regs[rs1] + imm.
    Jal, Jalr,
    // No operation and program termination.
    Nop, Halt,

    NumOpcodes
};

/** Number of opcodes, as a plain constant for table sizing. */
constexpr std::size_t num_opcodes =
    static_cast<std::size_t>(Opcode::NumOpcodes);

/** Broad functional classes used by the timing model. */
enum class OpClass : std::uint8_t
{
    IntAlu,    ///< single-cycle integer
    IntMul,    ///< pipelined multiply
    IntDiv,    ///< unpipelined divide
    FpAdd,     ///< floating add/sub
    FpMul,     ///< floating multiply
    FpDiv,     ///< unpipelined floating divide
    MemRead,   ///< load
    MemWrite,  ///< store
    Control,   ///< branch/jump
    NoOp       ///< nop/halt
};

/** Static properties of one opcode. */
struct OpInfo
{
    std::string_view mnemonic; ///< textual name for disassembly
    OpClass op_class;          ///< functional class
    bool reads_rs1;            ///< consumes regs[rs1]
    bool reads_rs2;            ///< consumes regs[rs2]
    bool writes_rd;            ///< produces regs[rd]
    bool is_branch;            ///< conditional control transfer
    bool is_jump;              ///< unconditional control transfer
};

/** Property lookup for @p op. */
const OpInfo &opInfo(Opcode op);

/** Convenience: mnemonic for @p op. */
std::string_view mnemonic(Opcode op);

} // namespace pgss::isa

#endif // PGSS_ISA_OPCODES_HH

/**
 * @file
 * Flat data memory for a simulated program. Word-addressed internally
 * (64-bit words) but exposed with byte addresses to match the ISA's
 * load/store semantics; accesses must be 8-byte aligned.
 *
 * The memory tracks writes at page granularity (4 KiB) so checkpoints
 * can store only the pages touched since the previous capture (delta
 * checkpoints, see sim/checkpoint.hh). The tracking cost is one byte
 * store per simulated store instruction.
 */

#ifndef PGSS_MEM_MAIN_MEMORY_HH
#define PGSS_MEM_MAIN_MEMORY_HH

#include <cstdint>
#include <vector>

namespace pgss::mem
{

/**
 * Program data memory. Size is fixed at construction from the
 * program's declared data footprint. Out-of-range accesses panic: the
 * workload generator is supposed to produce well-formed programs, so a
 * stray access is a simulator bug, not a user error.
 */
class MainMemory
{
  public:
    /** Dirty-tracking granularity: 2^page_shift words = 4 KiB. */
    static constexpr std::uint64_t page_shift = 9;

    /** Words per dirty-tracking page. */
    static constexpr std::uint64_t page_words =
        std::uint64_t{1} << page_shift;

    /** Allocate @p bytes of zeroed memory (rounded up to words). */
    explicit MainMemory(std::uint64_t bytes);

    /** Load the 64-bit word at byte address @p addr. */
    std::uint64_t read(std::uint64_t addr) const;

    /** Store @p value at byte address @p addr. */
    void write(std::uint64_t addr, std::uint64_t value);

    /** Capacity in bytes. */
    std::uint64_t sizeBytes() const { return words_.size() * 8; }

    /** Raw word storage, for checkpointing. */
    const std::vector<std::uint64_t> &words() const { return words_; }

    /**
     * Replace the word storage, for checkpoint restore. Marks every
     * page dirty: the new image has no known relation to the last
     * captured baseline.
     */
    void setWords(std::vector<std::uint64_t> w);

    /** Number of dirty-tracking pages. */
    std::size_t numPages() const { return page_dirty_.size(); }

    /** Words in page @p page (the last page may be partial). */
    std::uint64_t pageWordCount(std::uint32_t page) const;

    /** Pages written since the last clearPageDirty(), ascending. */
    std::vector<std::uint32_t> dirtyPageList() const;

    /** Reset dirty tracking (a checkpoint baseline was captured). */
    void clearPageDirty();

    // Fast-path access (cpu::FunctionalCore::runFast): raw storage
    // plus the dirty byte map. Callers must bounds-check and mark
    // pages dirty exactly as write() does.
    std::uint64_t *rawWords() { return words_.data(); }
    std::uint8_t *rawPageDirty() { return page_dirty_.data(); }

  private:
    std::vector<std::uint64_t> words_;
    std::vector<std::uint8_t> page_dirty_; ///< one byte per page
};

} // namespace pgss::mem

#endif // PGSS_MEM_MAIN_MEMORY_HH

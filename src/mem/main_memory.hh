/**
 * @file
 * Flat data memory for a simulated program. Word-addressed internally
 * (64-bit words) but exposed with byte addresses to match the ISA's
 * load/store semantics; accesses must be 8-byte aligned.
 */

#ifndef PGSS_MEM_MAIN_MEMORY_HH
#define PGSS_MEM_MAIN_MEMORY_HH

#include <cstdint>
#include <vector>

namespace pgss::mem
{

/**
 * Program data memory. Size is fixed at construction from the
 * program's declared data footprint. Out-of-range accesses panic: the
 * workload generator is supposed to produce well-formed programs, so a
 * stray access is a simulator bug, not a user error.
 */
class MainMemory
{
  public:
    /** Allocate @p bytes of zeroed memory (rounded up to words). */
    explicit MainMemory(std::uint64_t bytes);

    /** Load the 64-bit word at byte address @p addr. */
    std::uint64_t read(std::uint64_t addr) const;

    /** Store @p value at byte address @p addr. */
    void write(std::uint64_t addr, std::uint64_t value);

    /** Capacity in bytes. */
    std::uint64_t sizeBytes() const { return words_.size() * 8; }

    /** Raw word storage, for checkpointing. */
    const std::vector<std::uint64_t> &words() const { return words_; }

    /** Replace the word storage, for checkpoint restore. */
    void setWords(std::vector<std::uint64_t> w) { words_ = std::move(w); }

  private:
    std::vector<std::uint64_t> words_;
};

} // namespace pgss::mem

#endif // PGSS_MEM_MAIN_MEMORY_HH

/**
 * @file
 * Set-associative cache model with true-LRU replacement and
 * write-back/write-allocate policy. Models tag state and statistics
 * only (no data array — the functional core keeps the architectural
 * memory image), which is all a timing/sampling study needs and keeps
 * warming fast.
 */

#ifndef PGSS_MEM_CACHE_HH
#define PGSS_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pgss::obs
{
class Group;
}

namespace pgss::mem
{

/** Geometry and identity of one cache. */
struct CacheConfig
{
    std::string name = "cache"; ///< for stats reporting
    std::uint64_t size_bytes = 64 * 1024;
    std::uint32_t assoc = 4;
    std::uint32_t line_bytes = 64;
};

/** Outcome of one cache access. */
struct CacheAccessResult
{
    bool hit = false;        ///< line was present
    bool writeback = false;  ///< a dirty victim was evicted
    std::uint64_t victim_addr = 0; ///< victim line address (writeback)
};

/** Hit/miss/writeback counters. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;

    /** Miss ratio; 0 when no accesses have happened. */
    double missRatio() const;
};

/**
 * The cache proper. Tags only; LRU is tracked with a per-set access
 * stamp, giving true LRU at every associativity.
 */
class Cache
{
  public:
    /** Build from @p config; size/assoc/line must be powers of two. */
    explicit Cache(const CacheConfig &config);

    /**
     * Access the line containing byte address @p addr.
     * @param addr byte address.
     * @param is_write true for stores (marks the line dirty).
     * @return hit/miss and whether a dirty victim was written back.
     */
    CacheAccessResult access(std::uint64_t addr, bool is_write);

    /** True if the line containing @p addr is currently resident. */
    bool probe(std::uint64_t addr) const;

    /** Invalidate all lines and clear dirty bits (stats retained). */
    void flush();

    /** Accumulated statistics. */
    const CacheStats &stats() const { return stats_; }

    /** Reset statistics (contents retained). */
    void clearStats() { stats_ = CacheStats(); }

    /**
     * Register hits/misses/writebacks counters and the miss_ratio
     * formula into @p group. The cache must outlive dumps of the
     * registry @p group belongs to.
     */
    void registerStats(obs::Group &group) const;

    /** Geometry. */
    const CacheConfig &config() const { return config_; }

    /** Number of sets. */
    std::uint32_t numSets() const { return num_sets_; }

    /** Snapshot of all tag state, for checkpointing. */
    struct State
    {
        std::vector<std::uint64_t> tags;
        std::vector<std::uint8_t> valid;
        std::vector<std::uint8_t> dirty;
        std::vector<std::uint64_t> stamp;
        std::uint64_t tick;
    };

    /** Capture tag state. */
    State state() const;

    /** Restore tag state captured by state(). */
    void setState(const State &st);

  private:
    std::uint64_t lineIndex(std::uint64_t addr) const;

    CacheConfig config_;
    std::uint32_t num_sets_;
    std::uint32_t set_shift_;  ///< log2(line_bytes)
    std::uint64_t set_mask_;

    // Flattened [set][way] arrays.
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint8_t> dirty_;
    std::vector<std::uint64_t> stamp_;
    std::uint64_t tick_ = 0;

    CacheStats stats_;
};

} // namespace pgss::mem

#endif // PGSS_MEM_CACHE_HH

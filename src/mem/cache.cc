#include "mem/cache.hh"

#include <bit>

#include "obs/stats.hh"
#include "util/logging.hh"

namespace pgss::mem
{

double
CacheStats::missRatio() const
{
    const std::uint64_t total = hits + misses;
    return total ? static_cast<double>(misses) / total : 0.0;
}

Cache::Cache(const CacheConfig &config) : config_(config)
{
    using util::panicIf;
    panicIf(!std::has_single_bit(config.size_bytes),
            "cache size must be a power of two");
    panicIf(!std::has_single_bit(
                static_cast<std::uint64_t>(config.line_bytes)),
            "cache line size must be a power of two");
    panicIf(config.assoc == 0, "cache associativity must be nonzero");
    panicIf(config.size_bytes % (config.line_bytes * config.assoc) != 0,
            "cache size not divisible by way size");

    num_sets_ = static_cast<std::uint32_t>(
        config.size_bytes / (config.line_bytes * config.assoc));
    panicIf(!std::has_single_bit(static_cast<std::uint64_t>(num_sets_)),
            "cache set count must be a power of two");
    set_shift_ = std::countr_zero(
        static_cast<std::uint64_t>(config.line_bytes));
    set_mask_ = num_sets_ - 1;

    const std::size_t lines =
        static_cast<std::size_t>(num_sets_) * config.assoc;
    tags_.assign(lines, 0);
    valid_.assign(lines, 0);
    dirty_.assign(lines, 0);
    stamp_.assign(lines, 0);
}

std::uint64_t
Cache::lineIndex(std::uint64_t addr) const
{
    return addr >> set_shift_;
}

CacheAccessResult
Cache::access(std::uint64_t addr, bool is_write)
{
    const std::uint64_t line = lineIndex(addr);
    const std::uint64_t set = line & set_mask_;
    const std::uint64_t tag = line >> std::countr_zero(
        static_cast<std::uint64_t>(num_sets_));
    const std::size_t base =
        static_cast<std::size_t>(set) * config_.assoc;

    ++tick_;

    // Hit path.
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        const std::size_t i = base + w;
        if (valid_[i] && tags_[i] == tag) {
            stamp_[i] = tick_;
            dirty_[i] |= is_write ? 1 : 0;
            ++stats_.hits;
            return {true, false};
        }
    }

    // Miss: pick an invalid way, else the LRU way.
    std::size_t victim = base;
    bool found_invalid = false;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        const std::size_t i = base + w;
        if (!valid_[i]) {
            victim = i;
            found_invalid = true;
            break;
        }
        if (stamp_[i] < stamp_[victim])
            victim = i;
    }

    CacheAccessResult result;
    result.hit = false;
    result.writeback = !found_invalid && dirty_[victim];
    if (result.writeback) {
        ++stats_.writebacks;
        // Reconstruct the victim's byte address from its tag/set so
        // the next level can absorb the write-back.
        const std::uint64_t victim_line =
            (tags_[victim] << std::countr_zero(
                 static_cast<std::uint64_t>(num_sets_))) |
            set;
        result.victim_addr = victim_line << set_shift_;
    }

    tags_[victim] = tag;
    valid_[victim] = 1;
    dirty_[victim] = is_write ? 1 : 0;
    stamp_[victim] = tick_;
    ++stats_.misses;
    return result;
}

bool
Cache::probe(std::uint64_t addr) const
{
    const std::uint64_t line = lineIndex(addr);
    const std::uint64_t set = line & set_mask_;
    const std::uint64_t tag = line >> std::countr_zero(
        static_cast<std::uint64_t>(num_sets_));
    const std::size_t base =
        static_cast<std::size_t>(set) * config_.assoc;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        const std::size_t i = base + w;
        if (valid_[i] && tags_[i] == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    std::fill(valid_.begin(), valid_.end(), 0);
    std::fill(dirty_.begin(), dirty_.end(), 0);
}

Cache::State
Cache::state() const
{
    return {tags_, valid_, dirty_, stamp_, tick_};
}

void
Cache::setState(const State &st)
{
    util::panicIf(st.tags.size() != tags_.size(),
                  "cache state size mismatch");
    tags_ = st.tags;
    valid_ = st.valid;
    dirty_ = st.dirty;
    stamp_ = st.stamp;
    tick_ = st.tick;
}

void
Cache::registerStats(obs::Group &group) const
{
    group.addCounter("hits", "accesses that hit",
                     [this] { return stats_.hits; });
    group.addCounter("misses", "accesses that missed",
                     [this] { return stats_.misses; });
    group.addCounter("writebacks", "dirty victims evicted",
                     [this] { return stats_.writebacks; });
    group.addFormula("miss_ratio", "misses / (hits + misses)",
                     [this] { return stats_.missRatio(); });
}

} // namespace pgss::mem

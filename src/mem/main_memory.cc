#include "mem/main_memory.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pgss::mem
{

MainMemory::MainMemory(std::uint64_t bytes)
    : words_((bytes + 7) / 8, 0),
      page_dirty_((words_.size() + page_words - 1) / page_words, 1)
{
    // Every page starts dirty: nothing has been captured yet, so a
    // first delta would have to carry the whole image.
}

std::uint64_t
MainMemory::read(std::uint64_t addr) const
{
    util::panicIf((addr & 7) != 0, "unaligned memory read");
    const std::uint64_t w = addr >> 3;
    util::panicIf(w >= words_.size(), "memory read out of range");
    return words_[w];
}

void
MainMemory::write(std::uint64_t addr, std::uint64_t value)
{
    util::panicIf((addr & 7) != 0, "unaligned memory write");
    const std::uint64_t w = addr >> 3;
    util::panicIf(w >= words_.size(), "memory write out of range");
    words_[w] = value;
    page_dirty_[w >> page_shift] = 1;
}

void
MainMemory::setWords(std::vector<std::uint64_t> w)
{
    words_ = std::move(w);
    page_dirty_.assign((words_.size() + page_words - 1) / page_words,
                       1);
}

std::uint64_t
MainMemory::pageWordCount(std::uint32_t page) const
{
    util::panicIf(page >= page_dirty_.size(),
                  "page index out of range");
    const std::uint64_t first = std::uint64_t{page} * page_words;
    return std::min(page_words, words_.size() - first);
}

std::vector<std::uint32_t>
MainMemory::dirtyPageList() const
{
    std::vector<std::uint32_t> pages;
    for (std::size_t p = 0; p < page_dirty_.size(); ++p)
        if (page_dirty_[p])
            pages.push_back(static_cast<std::uint32_t>(p));
    return pages;
}

void
MainMemory::clearPageDirty()
{
    std::fill(page_dirty_.begin(), page_dirty_.end(), 0);
}

} // namespace pgss::mem

#include "mem/main_memory.hh"

#include "util/logging.hh"

namespace pgss::mem
{

MainMemory::MainMemory(std::uint64_t bytes)
    : words_((bytes + 7) / 8, 0)
{
}

std::uint64_t
MainMemory::read(std::uint64_t addr) const
{
    util::panicIf((addr & 7) != 0, "unaligned memory read");
    const std::uint64_t w = addr >> 3;
    util::panicIf(w >= words_.size(), "memory read out of range");
    return words_[w];
}

void
MainMemory::write(std::uint64_t addr, std::uint64_t value)
{
    util::panicIf((addr & 7) != 0, "unaligned memory write");
    const std::uint64_t w = addr >> 3;
    util::panicIf(w >= words_.size(), "memory write out of range");
    words_[w] = value;
}

} // namespace pgss::mem

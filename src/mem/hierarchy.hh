/**
 * @file
 * Two-level cache hierarchy matching the paper's configuration: split
 * 4-way 64 KB L1 instruction and data caches over a unified 1 MB L2,
 * in front of a fixed-latency main memory. Exposes both timed accesses
 * (returning the latency the pipeline must absorb) and untimed warming
 * accesses (used during functional fast-forwarding, which per
 * SMARTS/PGSS keeps long-lifetime cache state warm).
 */

#ifndef PGSS_MEM_HIERARCHY_HH
#define PGSS_MEM_HIERARCHY_HH

#include <cstdint>

#include "mem/cache.hh"

namespace pgss::obs
{
class Group;
}

namespace pgss::mem
{

/** Hierarchy geometry and latencies (cycles). */
struct HierarchyConfig
{
    CacheConfig l1i{"l1i", 64 * 1024, 4, 64};
    CacheConfig l1d{"l1d", 64 * 1024, 4, 64};
    CacheConfig l2{"l2", 1024 * 1024, 8, 64};

    std::uint32_t l1_latency = 3;   ///< load-to-use on an L1 hit
    std::uint32_t l2_latency = 12;  ///< additional cycles on L1 miss
    std::uint32_t mem_latency = 150; ///< additional cycles on L2 miss
};

/** The three caches plus the latency calculation. */
class CacheHierarchy
{
  public:
    /** Build all levels from @p config. */
    explicit CacheHierarchy(const HierarchyConfig &config);

    /**
     * Timed data access.
     * @param addr byte address.
     * @param is_write true for stores.
     * @return total access latency in cycles.
     */
    std::uint32_t dataAccess(std::uint64_t addr, bool is_write);

    /**
     * Timed instruction fetch of the line containing @p addr.
     * @return extra fetch latency in cycles (0 on an L1I hit).
     */
    std::uint32_t instFetch(std::uint64_t addr);

    /** Untimed data access: updates tag state only. */
    void warmData(std::uint64_t addr, bool is_write);

    /** Untimed instruction-fetch warming. */
    void warmInst(std::uint64_t addr);

    /** Invalidate every level. */
    void flushAll();

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }

    const HierarchyConfig &config() const { return config_; }

    /**
     * Register per-level child groups ("l1i"/"l1d"/"l2") with each
     * cache's counters into @p parent. The hierarchy must outlive
     * dumps of the enclosing registry.
     */
    void registerStats(obs::Group &parent) const;

    /** All-level tag snapshot for checkpointing. */
    struct State
    {
        Cache::State l1i, l1d, l2;
    };

    /** Capture hierarchy state. */
    State state() const;

    /** Restore hierarchy state. */
    void setState(const State &st);

  private:
    HierarchyConfig config_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
};

} // namespace pgss::mem

#endif // PGSS_MEM_HIERARCHY_HH

#include "mem/hierarchy.hh"

#include "obs/stats.hh"

namespace pgss::mem
{

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config)
    : config_(config), l1i_(config.l1i), l1d_(config.l1d), l2_(config.l2)
{
}

std::uint32_t
CacheHierarchy::dataAccess(std::uint64_t addr, bool is_write)
{
    std::uint32_t latency = config_.l1_latency;
    CacheAccessResult l1 = l1d_.access(addr, is_write);
    if (l1.hit)
        return latency;
    if (l1.writeback)
        l2_.access(l1.victim_addr, true); // victim drains into L2

    latency += config_.l2_latency;
    CacheAccessResult l2 = l2_.access(addr, false);
    if (l2.hit)
        return latency;
    return latency + config_.mem_latency;
}

std::uint32_t
CacheHierarchy::instFetch(std::uint64_t addr)
{
    CacheAccessResult l1 = l1i_.access(addr, false);
    if (l1.hit)
        return 0;
    CacheAccessResult l2 = l2_.access(addr, false);
    if (l2.hit)
        return config_.l2_latency;
    return config_.l2_latency + config_.mem_latency;
}

void
CacheHierarchy::warmData(std::uint64_t addr, bool is_write)
{
    CacheAccessResult l1 = l1d_.access(addr, is_write);
    if (l1.hit)
        return;
    if (l1.writeback)
        l2_.access(l1.victim_addr, true);
    l2_.access(addr, false);
}

void
CacheHierarchy::warmInst(std::uint64_t addr)
{
    CacheAccessResult l1 = l1i_.access(addr, false);
    if (!l1.hit)
        l2_.access(addr, false);
}

void
CacheHierarchy::flushAll()
{
    l1i_.flush();
    l1d_.flush();
    l2_.flush();
}

void
CacheHierarchy::registerStats(obs::Group &parent) const
{
    l1i_.registerStats(
        parent.child("l1i", "L1 instruction cache"));
    l1d_.registerStats(parent.child("l1d", "L1 data cache"));
    l2_.registerStats(parent.child("l2", "unified L2 cache"));
}

CacheHierarchy::State
CacheHierarchy::state() const
{
    return {l1i_.state(), l1d_.state(), l2_.state()};
}

void
CacheHierarchy::setState(const State &st)
{
    l1i_.setState(st.l1i);
    l1d_.setState(st.l1d);
    l2_.setState(st.l2);
}

} // namespace pgss::mem

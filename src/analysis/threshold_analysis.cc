#include "analysis/threshold_analysis.hh"

#include <cmath>

#include "bbv/bbv_math.hh"

namespace pgss::analysis
{

std::vector<DeltaPoint>
computeDeltas(const IntervalProfile &profile)
{
    std::vector<DeltaPoint> deltas;
    if (profile.intervals() < 2)
        return deltas;

    const double sigma = profile.ipcStats().stddev();
    deltas.reserve(profile.intervals() - 1);
    std::vector<double> prev = profile.bbvUnit(0);
    for (std::size_t i = 1; i < profile.intervals(); ++i) {
        std::vector<double> cur = profile.bbvUnit(i);
        DeltaPoint d;
        d.angle = bbv::angleBetweenUnit(prev, cur);
        const double dipc =
            std::abs(profile.intervalIpc(i) - profile.intervalIpc(i - 1));
        d.ipc_sigma = sigma > 0.0 ? dipc / sigma : 0.0;
        deltas.push_back(d);
        prev = std::move(cur);
    }
    return deltas;
}

RegionCounts
countRegions(const std::vector<DeltaPoint> &deltas,
             double bbv_threshold, double sigma_level)
{
    RegionCounts c;
    for (const DeltaPoint &d : deltas) {
        const bool significant = d.ipc_sigma >= sigma_level;
        const bool flagged = d.angle >= bbv_threshold;
        if (significant && flagged)
            ++c.detected;
        else if (significant)
            ++c.undetected;
        else if (flagged)
            ++c.false_positive;
        else
            ++c.correct_neg;
    }
    return c;
}

double
detectionRate(const RegionCounts &c)
{
    const std::uint64_t sig = c.detected + c.undetected;
    return sig ? static_cast<double>(c.detected) / sig : 1.0;
}

double
falsePositiveRate(const RegionCounts &c)
{
    const std::uint64_t flagged = c.detected + c.false_positive;
    return flagged ? static_cast<double>(c.false_positive) / flagged
                   : 0.0;
}

double
meanDetectionRate(const std::vector<std::vector<DeltaPoint>> &sets,
                  double bbv_threshold, double sigma_level)
{
    if (sets.empty())
        return 1.0;
    double sum = 0.0;
    for (const auto &deltas : sets)
        sum += detectionRate(
            countRegions(deltas, bbv_threshold, sigma_level));
    return sum / static_cast<double>(sets.size());
}

double
meanFalsePositiveRate(const std::vector<std::vector<DeltaPoint>> &sets,
                      double bbv_threshold, double sigma_level)
{
    if (sets.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &deltas : sets)
        sum += falsePositiveRate(
            countRegions(deltas, bbv_threshold, sigma_level));
    return sum / static_cast<double>(sets.size());
}

stats::Histogram2d
deltaDensity(const std::vector<std::vector<DeltaPoint>> &sets,
             std::uint32_t x_bins, std::uint32_t y_bins,
             double x_max_pi, double y_max_sigma)
{
    stats::Histogram2d h(0.0, x_max_pi * M_PI, x_bins, 0.0,
                         y_max_sigma, y_bins);
    for (const auto &deltas : sets) {
        if (deltas.empty())
            continue;
        const double w = 1.0 / static_cast<double>(deltas.size());
        for (const DeltaPoint &d : deltas)
            h.add(d.angle, d.ipc_sigma, w);
    }
    return h;
}

} // namespace pgss::analysis

#include "analysis/phase_sequence.hh"

#include "core/phase_table.hh"
#include "stats/running_stats.hh"

namespace pgss::analysis
{

PhaseSequence
classifyProfile(const IntervalProfile &profile, double threshold,
                bool compare_last_first)
{
    PhaseSequence seq;
    core::PhaseTable table(compare_last_first);
    seq.assignment.reserve(profile.intervals());

    for (std::size_t i = 0; i < profile.intervals(); ++i) {
        const core::MatchResult m =
            table.classify(profile.bbvUnit(i), threshold);
        seq.assignment.push_back(m.phase_id);
        if (m.created)
            seq.first_interval.push_back(
                static_cast<std::uint32_t>(i));
    }

    seq.n_phases = static_cast<std::uint32_t>(table.size());
    seq.n_changes = table.phaseChanges();
    seq.occupancy.assign(seq.n_phases, 0);
    for (std::uint32_t p : seq.assignment)
        ++seq.occupancy[p];
    return seq;
}

PhaseCharacteristics
phaseCharacteristics(const IntervalProfile &profile, double threshold,
                     bool compare_last_first)
{
    const PhaseSequence seq =
        classifyProfile(profile, threshold, compare_last_first);

    PhaseCharacteristics pc;
    pc.n_phases = seq.n_phases;
    pc.n_changes = seq.n_changes;

    const double total_ops = static_cast<double>(
        profile.intervals() * profile.intervalOps());
    pc.avg_interval_ops =
        total_ops / static_cast<double>(seq.n_changes + 1);

    // Within-phase IPC dispersion relative to the overall sigma.
    std::vector<stats::RunningStats> per_phase(seq.n_phases);
    for (std::size_t i = 0; i < profile.intervals(); ++i)
        per_phase[seq.assignment[i]].add(profile.intervalIpc(i));

    const double overall_sigma = profile.ipcStats().stddev();
    double num = 0.0;
    double den = 0.0;
    for (std::uint32_t p = 0; p < seq.n_phases; ++p) {
        const double w = static_cast<double>(seq.occupancy[p]);
        num += w * per_phase[p].stddev();
        den += w;
    }
    const double weighted_sigma = den > 0.0 ? num / den : 0.0;
    pc.within_phase_sigma =
        overall_sigma > 0.0 ? weighted_sigma / overall_sigma : 0.0;
    return pc;
}

} // namespace pgss::analysis

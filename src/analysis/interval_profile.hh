/**
 * @file
 * Ground-truth interval profiles: one full detailed simulation of a
 * workload, recorded as per-interval cycle counts and raw hashed-BBV
 * accumulators at a base granularity (100k ops by default, the
 * paper's finest analysis grain). Sampling error is always measured
 * against the profile's whole-program IPC, and the Figure 2/3/7-10
 * analyses are post-processing over profiles.
 */

#ifndef PGSS_ANALYSIS_INTERVAL_PROFILE_HH
#define PGSS_ANALYSIS_INTERVAL_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "sim/engine.hh"
#include "stats/running_stats.hh"

namespace pgss::analysis
{

/** The profile data. */
class IntervalProfile
{
  public:
    IntervalProfile() = default;

    /** Workload name the profile was built from. */
    const std::string &name() const { return name_; }

    /** Instructions per interval. */
    std::uint64_t intervalOps() const { return interval_ops_; }

    /** Number of complete intervals. */
    std::size_t intervals() const { return cycles_.size(); }

    /** Cycles spent in interval @p i. */
    std::uint64_t intervalCycles(std::size_t i) const
    {
        return cycles_[i];
    }

    /** IPC of interval @p i. */
    double intervalIpc(std::size_t i) const;

    /** CPI of interval @p i. */
    double intervalCpi(std::size_t i) const;

    /** Raw hashed-BBV accumulators of interval @p i. */
    const std::vector<double> &bbvRaw(std::size_t i) const
    {
        return bbv_raw_[i];
    }

    /** L2-normalised hashed BBV of interval @p i. */
    std::vector<double> bbvUnit(std::size_t i) const;

    /** Whole-program instruction count (tail included). */
    std::uint64_t totalOps() const { return total_ops_; }

    /** Whole-program cycle count (tail included). */
    std::uint64_t totalCycles() const { return total_cycles_; }

    /** Whole-program true IPC — the sampling-error reference. */
    double trueIpc() const;

    /** Whole-program true CPI. */
    double trueCpi() const;

    /** Mean/stddev of the per-interval IPC series. */
    stats::RunningStats ipcStats() const;

    /**
     * CPI of the window starting at interval @p start spanning
     * @p count intervals (what a perfectly-warmed detailed
     * simulation of that window measures).
     */
    double windowCpi(std::size_t start, std::size_t count) const;

    /**
     * Coarser-granularity view: merge every @p factor consecutive
     * intervals (cycles summed, raw BBVs added). A trailing group
     * shorter than @p factor is dropped, as the paper's plots do.
     */
    IntervalProfile aggregate(std::uint32_t factor) const;

    /** @name Construction (used by the builder and the cache) */
    /// @{
    void setMeta(std::string name, std::uint64_t interval_ops);
    void addInterval(std::uint64_t cycles, std::vector<double> bbv_raw);
    void setTotals(std::uint64_t ops, std::uint64_t cycles);
    /// @}

  private:
    std::string name_;
    std::uint64_t interval_ops_ = 0;
    std::vector<std::uint64_t> cycles_;
    std::vector<std::vector<double>> bbv_raw_;
    std::uint64_t total_ops_ = 0;
    std::uint64_t total_cycles_ = 0;
};

/**
 * Build a profile by running @p program to completion in detailed
 * mode with hashed-BBV tracking.
 * @param interval_ops base granularity (default 100k, the paper's).
 */
IntervalProfile
buildIntervalProfile(const isa::Program &program,
                     const sim::EngineConfig &config = {},
                     std::uint64_t interval_ops = 100'000);

} // namespace pgss::analysis

#endif // PGSS_ANALYSIS_INTERVAL_PROFILE_HH

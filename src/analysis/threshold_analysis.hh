/**
 * @file
 * The Section-4 threshold methodology. Consecutive-interval deltas
 * (BBV angle, |IPC change| in units of the benchmark's interval-IPC
 * standard deviation) populate the four regions of Figure 6:
 *
 *   Region 1: significant IPC change, angle below threshold
 *             (undetected change)
 *   Region 2: significant IPC change, angle above threshold
 *             (detected change)
 *   Region 3: small IPC change, angle below threshold (correct)
 *   Region 4: small IPC change, angle above threshold
 *             (false positive)
 *
 * Figures 7, 8 and 9 are views over these deltas; benchmarks are
 * weighted equally as in the paper.
 */

#ifndef PGSS_ANALYSIS_THRESHOLD_ANALYSIS_HH
#define PGSS_ANALYSIS_THRESHOLD_ANALYSIS_HH

#include <cstdint>
#include <vector>

#include "analysis/interval_profile.hh"
#include "stats/histogram.hh"

namespace pgss::analysis
{

/** One consecutive-interval delta. */
struct DeltaPoint
{
    double angle = 0.0;      ///< BBV change, radians
    double ipc_sigma = 0.0;  ///< |IPC change| / benchmark sigma
};

/** All deltas of one profile (at the profile's granularity). */
std::vector<DeltaPoint> computeDeltas(const IntervalProfile &profile);

/** Figure-6 region populations for one threshold pair. */
struct RegionCounts
{
    std::uint64_t undetected = 0;     ///< Region 1
    std::uint64_t detected = 0;       ///< Region 2
    std::uint64_t correct_neg = 0;    ///< Region 3
    std::uint64_t false_positive = 0; ///< Region 4
};

/**
 * Classify deltas.
 * @param bbv_threshold angle threshold, radians.
 * @param sigma_level IPC-change significance level (in sigmas).
 */
RegionCounts countRegions(const std::vector<DeltaPoint> &deltas,
                          double bbv_threshold, double sigma_level);

/** Region2 / (Region1 + Region2); 1.0 when no significant changes. */
double detectionRate(const RegionCounts &c);

/** Region4 / (Region2 + Region4); 0.0 when nothing is detected. */
double falsePositiveRate(const RegionCounts &c);

/**
 * Equal-weight mean of a per-benchmark rate across delta sets (the
 * paper weighs short and long benchmarks equally).
 */
double
meanDetectionRate(const std::vector<std::vector<DeltaPoint>> &sets,
                  double bbv_threshold, double sigma_level);

/** Equal-weight mean false-positive rate. */
double
meanFalsePositiveRate(const std::vector<std::vector<DeltaPoint>> &sets,
                      double bbv_threshold, double sigma_level);

/**
 * Figure-7 density: a 2-D histogram of (angle, sigma) with each
 * benchmark's deltas normalised to equal total weight.
 */
stats::Histogram2d
deltaDensity(const std::vector<std::vector<DeltaPoint>> &sets,
             std::uint32_t x_bins = 25, std::uint32_t y_bins = 20,
             double x_max_pi = 0.5, double y_max_sigma = 1.0);

} // namespace pgss::analysis

#endif // PGSS_ANALYSIS_THRESHOLD_ANALYSIS_HH

/**
 * @file
 * On-disk cache of interval profiles. A full detailed run of a
 * workload takes seconds-to-minutes; every bench binary needs the
 * same ground truth, so profiles are built once and keyed by workload
 * identity (name, code hash, data size, interval size, machine
 * config). Delete the cache directory (default ./pgss_profile_cache,
 * override with PGSS_PROFILE_CACHE) to force rebuilds.
 */

#ifndef PGSS_ANALYSIS_PROFILE_CACHE_HH
#define PGSS_ANALYSIS_PROFILE_CACHE_HH

#include <string>

#include "analysis/interval_profile.hh"
#include "util/serialize.hh"

namespace pgss::analysis
{

/** Loads profiles from disk or builds and stores them. */
class ProfileCache
{
  public:
    /** @param dir cache directory (created on first store). */
    explicit ProfileCache(std::string dir = "");

    /**
     * Return the profile for @p program, building it (and caching the
     * result) when absent or stale.
     */
    IntervalProfile loadOrBuild(const isa::Program &program,
                                const sim::EngineConfig &config = {},
                                std::uint64_t interval_ops = 100'000);

    /** Cache file path used for @p program. */
    std::string pathFor(const isa::Program &program,
                        const sim::EngineConfig &config,
                        std::uint64_t interval_ops) const;

  private:
    std::string dir_;
};

/** Serialize a profile (exposed for tests). */
std::vector<std::uint8_t> serializeProfile(const IntervalProfile &p);

/** Deserialize; @p ok reports malformed input. */
IntervalProfile
deserializeProfile(const std::vector<std::uint8_t> &data, bool &ok);

/**
 * Deserialize with failure classification: Stale for a previous
 * format version (silent rebuild), Corrupt for damage (the cache file
 * gets quarantined by loadOrBuild).
 */
IntervalProfile
deserializeProfile(const std::vector<std::uint8_t> &data,
                   util::ReadError &err);

} // namespace pgss::analysis

#endif // PGSS_ANALYSIS_PROFILE_CACHE_HH

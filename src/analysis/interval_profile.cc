#include "analysis/interval_profile.hh"

#include "bbv/bbv_math.hh"
#include "util/logging.hh"

namespace pgss::analysis
{

double
IntervalProfile::intervalIpc(std::size_t i) const
{
    return static_cast<double>(interval_ops_) /
           static_cast<double>(cycles_[i]);
}

double
IntervalProfile::intervalCpi(std::size_t i) const
{
    return static_cast<double>(cycles_[i]) /
           static_cast<double>(interval_ops_);
}

std::vector<double>
IntervalProfile::bbvUnit(std::size_t i) const
{
    std::vector<double> v = bbv_raw_[i];
    bbv::normalizeL2(v);
    return v;
}

double
IntervalProfile::trueIpc() const
{
    return total_cycles_ ? static_cast<double>(total_ops_) /
                               static_cast<double>(total_cycles_)
                         : 0.0;
}

double
IntervalProfile::trueCpi() const
{
    return total_ops_ ? static_cast<double>(total_cycles_) /
                            static_cast<double>(total_ops_)
                      : 0.0;
}

stats::RunningStats
IntervalProfile::ipcStats() const
{
    stats::RunningStats s;
    for (std::size_t i = 0; i < intervals(); ++i)
        s.add(intervalIpc(i));
    return s;
}

double
IntervalProfile::windowCpi(std::size_t start, std::size_t count) const
{
    util::panicIf(start + count > intervals() || count == 0,
                  "windowCpi out of range");
    std::uint64_t cyc = 0;
    for (std::size_t i = start; i < start + count; ++i)
        cyc += cycles_[i];
    return static_cast<double>(cyc) /
           static_cast<double>(interval_ops_ * count);
}

IntervalProfile
IntervalProfile::aggregate(std::uint32_t factor) const
{
    util::panicIf(factor == 0, "aggregate factor must be nonzero");
    IntervalProfile out;
    out.setMeta(name_, interval_ops_ * factor);
    const std::size_t groups = intervals() / factor;
    for (std::size_t g = 0; g < groups; ++g) {
        std::uint64_t cyc = 0;
        std::vector<double> bbv;
        for (std::uint32_t j = 0; j < factor; ++j) {
            const std::size_t i = g * factor + j;
            cyc += cycles_[i];
            if (bbv.empty()) {
                bbv = bbv_raw_[i];
            } else {
                for (std::size_t d = 0; d < bbv.size(); ++d)
                    bbv[d] += bbv_raw_[i][d];
            }
        }
        out.addInterval(cyc, std::move(bbv));
    }
    out.setTotals(total_ops_, total_cycles_);
    return out;
}

void
IntervalProfile::setMeta(std::string name, std::uint64_t interval_ops)
{
    name_ = std::move(name);
    interval_ops_ = interval_ops;
}

void
IntervalProfile::addInterval(std::uint64_t cycles,
                             std::vector<double> bbv_raw)
{
    cycles_.push_back(cycles);
    bbv_raw_.push_back(std::move(bbv_raw));
}

void
IntervalProfile::setTotals(std::uint64_t ops, std::uint64_t cycles)
{
    total_ops_ = ops;
    total_cycles_ = cycles;
}

IntervalProfile
buildIntervalProfile(const isa::Program &program,
                     const sim::EngineConfig &config,
                     std::uint64_t interval_ops)
{
    util::panicIf(interval_ops == 0, "interval_ops must be nonzero");

    sim::SimulationEngine engine(program, config);
    engine.setHashedBbvEnabled(true);

    IntervalProfile profile;
    profile.setMeta(program.name, interval_ops);

    while (!engine.halted()) {
        const sim::RunResult r =
            engine.run(interval_ops, sim::SimMode::DetailedMeasure);
        if (r.ops == 0)
            break;
        if (r.ops == interval_ops) {
            profile.addInterval(r.cycles, engine.harvestHashedBbvRaw());
        } else {
            // Trailing partial interval: totals keep it, the
            // interval series does not.
            engine.harvestHashedBbvRaw();
        }
    }

    profile.setTotals(engine.totalOps(), engine.cycles());
    return profile;
}

} // namespace pgss::analysis

#include "analysis/profile_cache.hh"

#include <cctype>
#include <cstdio>
#include <filesystem>

#include "obs/spans.hh"
#include "util/atomic_file.hh"
#include "util/env.hh"
#include "util/fi.hh"
#include "util/logging.hh"
#include "util/serialize.hh"

namespace pgss::analysis
{

namespace
{

constexpr std::uint32_t profile_magic = 0x50475046; // "PGPF"
// v3: CRC-32 seal after the header fields and after the interval
// payload, so bit-flips and truncation are detected as Corrupt
// (quarantine + rebuild) instead of silently skewing ground truth.
constexpr std::uint32_t profile_version = 3;

// Cache file traffic checks the "cache.*" fault sites; cache.read
// corrupts loaded bytes so CRC validation is what catches them.
util::FileSites cache_sites("cache");
util::fi::Site cache_read("cache.read");

/** FNV-1a over the pieces that define a workload+machine identity. */
std::uint64_t
identityHash(const isa::Program &program,
             const sim::EngineConfig &config,
             std::uint64_t interval_ops)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    for (const isa::Instruction &inst : program.code) {
        mix(static_cast<std::uint64_t>(inst.op) |
            (std::uint64_t{inst.rd} << 8) |
            (std::uint64_t{inst.rs1} << 16) |
            (std::uint64_t{inst.rs2} << 24));
        mix(static_cast<std::uint64_t>(inst.imm));
    }
    mix(program.data_bytes);
    mix(program.entry);
    mix(interval_ops);
    mix(config.hierarchy.l1d.size_bytes);
    mix(config.hierarchy.l1d.assoc);
    mix(config.hierarchy.l2.size_bytes);
    mix(config.hierarchy.mem_latency);
    mix(config.pipeline.width);
    mix(config.pipeline.mispredict_penalty);
    mix(config.hashed_bbv.seed);
    mix(config.hashed_bbv.hash_bits);
    return h;
}

std::string
sanitize(const std::string &name)
{
    std::string out;
    for (char c : name)
        out.push_back(std::isalnum(static_cast<unsigned char>(c))
                          ? c
                          : '_');
    return out;
}

} // anonymous namespace

std::vector<std::uint8_t>
serializeProfile(const IntervalProfile &p)
{
    util::BinaryWriter w(profile_magic, profile_version);
    w.putString(p.name());
    w.putU64(p.intervalOps());
    w.putU64(p.totalOps());
    w.putU64(p.totalCycles());
    w.putU64(p.intervals());
    w.putSectionCrc(); // header
    for (std::size_t i = 0; i < p.intervals(); ++i) {
        w.putU64(p.intervalCycles(i));
        w.putDoubleVec(p.bbvRaw(i));
    }
    w.putSectionCrc(); // intervals
    return w.bytes();
}

IntervalProfile
deserializeProfile(const std::vector<std::uint8_t> &data, bool &ok)
{
    util::ReadError err;
    IntervalProfile p = deserializeProfile(data, err);
    ok = err == util::ReadError::None;
    return p;
}

IntervalProfile
deserializeProfile(const std::vector<std::uint8_t> &data,
                   util::ReadError &err)
{
    IntervalProfile p;
    util::BinaryReader r(data, profile_magic, profile_version);
    if (!r.ok()) {
        err = r.error();
        return p;
    }
    const std::string name = r.getString();
    const std::uint64_t interval_ops = r.getU64();
    p.setMeta(name, interval_ops);
    const std::uint64_t total_ops = r.getU64();
    const std::uint64_t total_cycles = r.getU64();
    const std::uint64_t n = r.getU64();
    r.checkSectionCrc(); // header
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        const std::uint64_t cycles = r.getU64();
        p.addInterval(cycles, r.getDoubleVec());
    }
    r.checkSectionCrc(); // intervals
    p.setTotals(total_ops, total_cycles);
    err = r.error();
    return p;
}

ProfileCache::ProfileCache(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        dir_ = util::profileCacheDir();
}

std::string
ProfileCache::pathFor(const isa::Program &program,
                      const sim::EngineConfig &config,
                      std::uint64_t interval_ops) const
{
    const std::uint64_t h =
        identityHash(program, config, interval_ops);
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "_%016llx.profile",
                  static_cast<unsigned long long>(h));
    return dir_ + "/" + sanitize(program.name) + suffix;
}

IntervalProfile
ProfileCache::loadOrBuild(const isa::Program &program,
                          const sim::EngineConfig &config,
                          std::uint64_t interval_ops)
{
    const std::string path = pathFor(program, config, interval_ops);

    {
        PGSS_SPAN("profile_cache.load", Io);
        std::vector<std::uint8_t> bytes;
        if (util::readFileBytes(path, bytes)) {
            // Injected read corruption lands on the raw bytes, so it
            // exercises exactly the path a flipped bit on disk takes.
            cache_read.corrupt(bytes);
            util::ReadError err;
            IntervalProfile p = deserializeProfile(bytes, err);
            if (err == util::ReadError::None) {
                util::verbose("profile cache hit: %s", path.c_str());
                return p;
            }
            if (err == util::ReadError::Corrupt) {
                // Damage, not staleness: set the file aside for
                // inspection and rebuild ground truth from scratch.
                ++util::fi::counter("cache.quarantined");
                util::quarantineFile(path);
            }
        }
    }

    util::inform("building ground-truth profile for %s "
                 "(full detailed simulation; cached at %s)",
                 program.name.c_str(), path.c_str());
    IntervalProfile p = [&] {
        PGSS_SPAN("profile_cache.build", Bench);
        return buildIntervalProfile(program, config, interval_ops);
    }();

    PGSS_SPAN("profile_cache.store", Io);
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    const auto bytes = serializeProfile(p);
    std::string werr;
    if (!util::atomicWriteFile(path, bytes.data(), bytes.size(),
                               &cache_sites, &werr)) {
        // Not fatal: the profile is returned in memory; the next run
        // rebuilds it. Counted so chaos tests can assert degradation.
        ++util::fi::counter("cache.store_failed");
        util::warn("could not write profile cache file %s (%s)",
                   path.c_str(), werr.c_str());
    }
    return p;
}

} // namespace pgss::analysis

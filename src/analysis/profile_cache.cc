#include "analysis/profile_cache.hh"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "obs/spans.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/serialize.hh"

namespace pgss::analysis
{

namespace
{

constexpr std::uint32_t profile_magic = 0x50475046; // "PGPF"
constexpr std::uint32_t profile_version = 2;

/** FNV-1a over the pieces that define a workload+machine identity. */
std::uint64_t
identityHash(const isa::Program &program,
             const sim::EngineConfig &config,
             std::uint64_t interval_ops)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    for (const isa::Instruction &inst : program.code) {
        mix(static_cast<std::uint64_t>(inst.op) |
            (std::uint64_t{inst.rd} << 8) |
            (std::uint64_t{inst.rs1} << 16) |
            (std::uint64_t{inst.rs2} << 24));
        mix(static_cast<std::uint64_t>(inst.imm));
    }
    mix(program.data_bytes);
    mix(program.entry);
    mix(interval_ops);
    mix(config.hierarchy.l1d.size_bytes);
    mix(config.hierarchy.l1d.assoc);
    mix(config.hierarchy.l2.size_bytes);
    mix(config.hierarchy.mem_latency);
    mix(config.pipeline.width);
    mix(config.pipeline.mispredict_penalty);
    mix(config.hashed_bbv.seed);
    mix(config.hashed_bbv.hash_bits);
    return h;
}

std::string
sanitize(const std::string &name)
{
    std::string out;
    for (char c : name)
        out.push_back(std::isalnum(static_cast<unsigned char>(c))
                          ? c
                          : '_');
    return out;
}

} // anonymous namespace

std::vector<std::uint8_t>
serializeProfile(const IntervalProfile &p)
{
    util::BinaryWriter w(profile_magic, profile_version);
    w.putString(p.name());
    w.putU64(p.intervalOps());
    w.putU64(p.totalOps());
    w.putU64(p.totalCycles());
    w.putU64(p.intervals());
    for (std::size_t i = 0; i < p.intervals(); ++i) {
        w.putU64(p.intervalCycles(i));
        w.putDoubleVec(p.bbvRaw(i));
    }
    return w.bytes();
}

IntervalProfile
deserializeProfile(const std::vector<std::uint8_t> &data, bool &ok)
{
    IntervalProfile p;
    util::BinaryReader r(data, profile_magic, profile_version);
    if (!r.ok()) {
        ok = false;
        return p;
    }
    const std::string name = r.getString();
    const std::uint64_t interval_ops = r.getU64();
    p.setMeta(name, interval_ops);
    const std::uint64_t total_ops = r.getU64();
    const std::uint64_t total_cycles = r.getU64();
    const std::uint64_t n = r.getU64();
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        const std::uint64_t cycles = r.getU64();
        p.addInterval(cycles, r.getDoubleVec());
    }
    p.setTotals(total_ops, total_cycles);
    ok = r.ok();
    return p;
}

ProfileCache::ProfileCache(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        dir_ = util::profileCacheDir();
}

std::string
ProfileCache::pathFor(const isa::Program &program,
                      const sim::EngineConfig &config,
                      std::uint64_t interval_ops) const
{
    const std::uint64_t h =
        identityHash(program, config, interval_ops);
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "_%016llx.profile",
                  static_cast<unsigned long long>(h));
    return dir_ + "/" + sanitize(program.name) + suffix;
}

IntervalProfile
ProfileCache::loadOrBuild(const isa::Program &program,
                          const sim::EngineConfig &config,
                          std::uint64_t interval_ops)
{
    const std::string path = pathFor(program, config, interval_ops);

    {
        PGSS_SPAN("profile_cache.load", Io);
        util::BinaryReader r = util::BinaryReader::fromFile(
            path, profile_magic, profile_version);
        if (r.ok()) {
            // Re-read through the public deserializer so the file
            // format has one owner.
            std::ifstream in(path, std::ios::binary);
            std::vector<std::uint8_t> bytes(
                (std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
            bool ok = false;
            IntervalProfile p = deserializeProfile(bytes, ok);
            if (ok) {
                util::verbose("profile cache hit: %s", path.c_str());
                return p;
            }
        }
    }

    util::inform("building ground-truth profile for %s "
                 "(full detailed simulation; cached at %s)",
                 program.name.c_str(), path.c_str());
    IntervalProfile p = [&] {
        PGSS_SPAN("profile_cache.build", Bench);
        return buildIntervalProfile(program, config, interval_ops);
    }();

    PGSS_SPAN("profile_cache.store", Io);
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    const auto bytes = serializeProfile(p);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out) {
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
    }
    if (!out)
        util::warn("could not write profile cache file %s",
                   path.c_str());
    return p;
}

} // namespace pgss::analysis

/**
 * @file
 * Phase classification over a recorded profile: replays the PGSS
 * phase-matching policy over a profile's BBV sequence at a given
 * threshold, without running any simulation. Feeds Figure 10 (phase
 * characteristics vs threshold) and the Online SimPoint baseline's
 * perfect phase predictor.
 */

#ifndef PGSS_ANALYSIS_PHASE_SEQUENCE_HH
#define PGSS_ANALYSIS_PHASE_SEQUENCE_HH

#include <cstdint>
#include <vector>

#include "analysis/interval_profile.hh"

namespace pgss::analysis
{

/** A profile's interval-by-interval phase assignment. */
struct PhaseSequence
{
    std::vector<std::uint32_t> assignment; ///< interval -> phase id
    std::uint32_t n_phases = 0;
    std::uint64_t n_changes = 0; ///< transitions between phases

    /** Occupancy (interval count) per phase id. */
    std::vector<std::uint64_t> occupancy;

    /** First interval index at which each phase appears. */
    std::vector<std::uint32_t> first_interval;
};

/**
 * Classify every interval of @p profile with the PGSS matching policy
 * at @p threshold radians.
 */
PhaseSequence classifyProfile(const IntervalProfile &profile,
                              double threshold,
                              bool compare_last_first = true);

/** Figure-10 statistics for one threshold. */
struct PhaseCharacteristics
{
    std::uint32_t n_phases = 0;
    std::uint64_t n_changes = 0;

    /** Mean ops between phase transitions. */
    double avg_interval_ops = 0.0;

    /**
     * Occupancy-weighted within-phase IPC standard deviation, in
     * units of the benchmark's overall interval-IPC sigma (1.0 means
     * phases explain none of the variation).
     */
    double within_phase_sigma = 0.0;
};

/** Compute the Figure-10 statistics at @p threshold. */
PhaseCharacteristics
phaseCharacteristics(const IntervalProfile &profile, double threshold,
                     bool compare_last_first = true);

} // namespace pgss::analysis

#endif // PGSS_ANALYSIS_PHASE_SEQUENCE_HH

/**
 * @file
 * The PGSS-Sim controller: the paper's Figure-5 flow chart driving a
 * SimulationEngine. Fast-forward one BBV period in functional-warming
 * mode while tracking the hashed BBV; classify the period into a
 * phase; if the phase's CPI confidence interval is still open and its
 * last sample is at least the spacing distance behind, run the
 * SMARTS-style detailed warm-up and measured window and credit the
 * observation to the phase. The program estimate is the
 * occupancy-weighted combination of per-phase sample means.
 */

#ifndef PGSS_CORE_PGSS_CONTROLLER_HH
#define PGSS_CORE_PGSS_CONTROLLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/adaptive_threshold.hh"
#include "core/pgss_config.hh"
#include "core/phase_table.hh"
#include "sim/engine.hh"

namespace pgss::obs
{
class Group;
}

namespace pgss::core
{

/** One entry of the optional sample timeline (Figure-1 output). */
struct SampleEvent
{
    std::uint64_t at_op = 0;     ///< global op position of the sample
    std::uint32_t phase_id = 0;  ///< phase it was credited to
    double cpi = 0.0;            ///< measured CPI
};

/** Summary of one phase at the end of a run. */
struct PhaseSummary
{
    std::uint32_t id = 0;
    std::uint64_t member_periods = 0;
    std::uint64_t ops = 0;
    std::uint64_t samples = 0;
    double mean_cpi = 0.0;
    double cpi_cov = 0.0;
};

/** Everything a PGSS run produces. */
struct PgssResult
{
    double est_cpi = 0.0;
    double est_ipc = 0.0;
    std::uint64_t total_ops = 0;

    std::uint64_t n_phases = 0;
    std::uint64_t n_phase_changes = 0;
    std::uint64_t n_samples = 0;
    std::uint64_t detailed_ops = 0; ///< warm-up + measured windows
    sim::ModeOps mode_ops;

    double final_threshold = 0.0; ///< after adaptation (if enabled)
    std::uint32_t threshold_adjustments = 0;

    std::vector<PhaseSummary> phases;
    std::vector<SampleEvent> timeline; ///< when record_timeline set
};

/**
 * Live counters a controller updates as it runs, so registered stats
 * and trace consumers see sampling progress without waiting for the
 * PgssResult. Accumulates across run() calls on the same controller.
 */
struct ControllerCounters
{
    std::uint64_t periods = 0;
    std::uint64_t samples = 0;
    std::uint64_t phases = 0;
    std::uint64_t phase_changes = 0;
    std::uint64_t threshold_adjustments = 0;
    double threshold = 0.0; ///< current angle threshold (radians)
};

/** Runs PGSS-Sim over one engine. */
class PgssController
{
  public:
    explicit PgssController(const PgssConfig &config = {});

    /**
     * Drive @p engine from its current position to completion and
     * return the PGSS estimate. The engine must be freshly
     * constructed (no prior detailed execution) for the per-mode
     * accounting to equal the technique's cost.
     */
    PgssResult run(sim::SimulationEngine &engine);

    const PgssConfig &config() const { return config_; }

    /** Live sampling-progress counters. */
    const ControllerCounters &counters() const { return counters_; }

    /**
     * Register the sampling-decision counters (periods, samples,
     * phases, threshold moves) into a "pgss" child of @p parent. The
     * controller must outlive dumps of the enclosing registry.
     */
    void registerStats(obs::Group &parent) const;

  private:
    PgssConfig config_;
    ControllerCounters counters_;
};

} // namespace pgss::core

#endif // PGSS_CORE_PGSS_CONTROLLER_HH

/**
 * @file
 * Runtime threshold adaptation — the paper's future-work item
 * ("ideally, the algorithm would adapt at runtime to program
 * characteristics"). Two proxies steer the BBV angle threshold
 * between bounds: redundant phase creations (a new phase whose CPI
 * turns out to match an existing phase — evidence the threshold is
 * too low and is producing false positives) push it up; high pooled
 * within-phase CPI dispersion (evidence phases lump distinct
 * behaviours together) pushes it down.
 */

#ifndef PGSS_CORE_ADAPTIVE_THRESHOLD_HH
#define PGSS_CORE_ADAPTIVE_THRESHOLD_HH

#include <cstdint>

#include "core/pgss_config.hh"
#include "core/phase_table.hh"

namespace pgss::core
{

/** Tracks the proxies and nudges the threshold. */
class AdaptiveThreshold
{
  public:
    AdaptiveThreshold(const AdaptiveThresholdConfig &config,
                      double initial_threshold);

    /** Current threshold in radians. */
    double threshold() const { return threshold_; }

    /** Notify that one BBV period was classified. */
    void onPeriod(const PhaseTable &table, bool created_phase);

    /** Number of adjustments made so far (diagnostics). */
    std::uint32_t adjustments() const { return adjustments_; }

  private:
    void adjust(const PhaseTable &table);

    AdaptiveThresholdConfig config_;
    double threshold_;
    std::uint32_t periods_since_adjust_ = 0;
    std::uint32_t creations_in_window_ = 0;
    std::uint32_t redundant_in_window_ = 0;
    std::uint32_t adjustments_ = 0;
};

} // namespace pgss::core

#endif // PGSS_CORE_ADAPTIVE_THRESHOLD_HH

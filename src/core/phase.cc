#include "core/phase.hh"

#include "bbv/bbv_math.hh"

namespace pgss::core
{

Phase::Phase(std::uint32_t id, std::vector<double> first_bbv)
    : id_(id), centroid_(first_bbv), sum_(std::move(first_bbv))
{
    member_periods_ = 1;
    bbv::normalizeL2(centroid_);
}

void
Phase::addMember(const std::vector<double> &bbv)
{
    for (std::size_t i = 0; i < sum_.size() && i < bbv.size(); ++i)
        sum_[i] += bbv[i];
    ++member_periods_;
    centroid_ = sum_;
    bbv::normalizeL2(centroid_);
}

void
Phase::addSample(double cpi, std::uint64_t at_op)
{
    cpi_.add(cpi);
    last_sample_op_ = at_op;
}

} // namespace pgss::core

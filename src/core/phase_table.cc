#include "core/phase_table.hh"

#include <limits>

#include "bbv/bbv_math.hh"

namespace pgss::core
{

PhaseTable::PhaseTable(bool compare_last_first)
    : compare_last_first_(compare_last_first)
{
}

MatchResult
PhaseTable::classify(const std::vector<double> &unit_bbv,
                     double threshold)
{
    MatchResult res;

    if (phases_.empty()) {
        phases_.emplace_back(0, unit_bbv);
        current_ = 0;
        res.phase_id = 0;
        res.created = true;
        res.changed = false;
        return res;
    }

    // Fast path: it is most likely no phase change occurred.
    res.angle_to_last =
        bbv::angleBetweenUnit(unit_bbv, phases_[current_].centroid());
    if (compare_last_first_ && res.angle_to_last < threshold) {
        phases_[current_].addMember(unit_bbv);
        res.phase_id = current_;
        return res;
    }

    // Full scan: nearest phase within the threshold wins.
    double best_angle = std::numeric_limits<double>::max();
    std::uint32_t best = 0;
    for (std::uint32_t i = 0; i < phases_.size(); ++i) {
        const double a =
            bbv::angleBetweenUnit(unit_bbv, phases_[i].centroid());
        if (a < best_angle) {
            best_angle = a;
            best = i;
        }
    }

    if (best_angle < threshold) {
        phases_[best].addMember(unit_bbv);
        if (best != current_) {
            res.changed = true;
            ++changes_;
            current_ = best;
        }
        res.phase_id = best;
        return res;
    }

    // No match: open a new phase.
    const auto id = static_cast<std::uint32_t>(phases_.size());
    phases_.emplace_back(id, unit_bbv);
    current_ = id;
    ++changes_;
    res.phase_id = id;
    res.created = true;
    res.changed = true;
    return res;
}

} // namespace pgss::core

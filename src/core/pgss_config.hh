/**
 * @file
 * Parameters of Phase-Guided Small-Sample Simulation. Defaults are
 * the paper's: 100k-op BBV sampling periods during functional
 * fast-forwarding, 3,000-op detailed warm-up plus 1,000-op measured
 * window per sample, a 0.05*pi BBV angle threshold, TurboSMARTS-style
 * 3%-at-99.7% per-phase confidence stopping, and at most one sample
 * per phase per million ops to spread samples across a phase's
 * occurrences.
 */

#ifndef PGSS_CORE_PGSS_CONFIG_HH
#define PGSS_CORE_PGSS_CONFIG_HH

#include <cmath>
#include <cstdint>

namespace pgss::core
{

/** Runtime threshold adaptation (the paper's future-work feature). */
struct AdaptiveThresholdConfig
{
    bool enabled = false;
    double min_threshold = 0.01 * M_PI;
    double max_threshold = 0.25 * M_PI;

    /** Periods between adaptation steps. */
    std::uint32_t adjust_interval = 64;

    /** Multiplicative step applied per adjustment. */
    double step = 1.25;

    /**
     * Raise the threshold when more than this fraction of recent
     * phase creations were redundant (new phase CPI within
     * redundant_cpi_margin of an existing phase's).
     */
    double max_redundant_fraction = 0.5;
    double redundant_cpi_margin = 0.05;

    /**
     * Lower the threshold when the pooled within-phase CPI
     * coefficient of variation exceeds this (phases too coarse).
     */
    double max_phase_cov = 0.10;
};

/** All PGSS-Sim knobs. */
struct PgssConfig
{
    std::uint64_t bbv_period = 100'000;      ///< FF/BBV period (ops)
    std::uint64_t detailed_warmup = 3'000;   ///< pre-sample warm-up
    std::uint64_t detailed_sample = 1'000;   ///< measured window
    double threshold = 0.05 * M_PI;          ///< BBV angle (radians)

    /**
     * Per-phase stopping bounds. The paper states phases stop being
     * sampled once "within confidence bounds" without giving the
     * levels; 95% with a 3% half-width and a 4-sample floor keeps
     * stable phases cheap while preventing false convergence from
     * two coincidentally-equal samples in a polymodal phase.
     */
    double confidence = 0.95;      ///< per-phase CI confidence
    double relative_error = 0.03;  ///< per-phase CI half-width target
    std::uint64_t min_samples_per_phase = 4;

    /** Spread samples: min ops between samples of the same phase. */
    std::uint64_t min_sample_spacing = 1'000'000;
    bool spread_samples = true;

    /** Compare to the previous period's phase before the full table. */
    bool compare_last_first = true;

    /**
     * Place each sample at a uniformly-random offset inside its
     * period instead of at the period start. Fixed placement aliases
     * against workloads whose micro-phases (the paper's art/mcf
     * 40-50k-op oscillations) are near-commensurate with the BBV
     * period: consecutive samples land in the same micro-behaviour
     * and the phase CI converges one-sided. Stratified-random
     * placement is the standard systematic-sampling remedy.
     */
    bool jitter_samples = true;
    std::uint64_t jitter_seed = 0x5a3c1e7;

    /** Record the sample timeline (Figure-1 style output). */
    bool record_timeline = false;

    AdaptiveThresholdConfig adaptive;
};

} // namespace pgss::core

#endif // PGSS_CORE_PGSS_CONFIG_HH

#include "core/adaptive_threshold.hh"

#include <algorithm>
#include <cmath>

namespace pgss::core
{

AdaptiveThreshold::AdaptiveThreshold(
    const AdaptiveThresholdConfig &config, double initial_threshold)
    : config_(config), threshold_(initial_threshold)
{
}

void
AdaptiveThreshold::onPeriod(const PhaseTable &table, bool created_phase)
{
    if (!config_.enabled)
        return;

    if (created_phase) {
        ++creations_in_window_;
        // Redundant creation: the newest phase's sampled CPI sits
        // within the margin of another phase's — the BBVs differed
        // but the performance did not (a false positive in the
        // Figure-6 sense).
        const Phase &newest = table.phases().back();
        if (newest.sampleCount() > 0) {
            for (const Phase &other : table.phases()) {
                if (other.id() == newest.id() ||
                    other.sampleCount() == 0)
                    continue;
                const double ref = std::abs(other.cpi().mean());
                if (ref > 0.0 &&
                    std::abs(newest.cpi().mean() - other.cpi().mean()) <
                        config_.redundant_cpi_margin * ref) {
                    ++redundant_in_window_;
                    break;
                }
            }
        }
    }

    if (++periods_since_adjust_ >= config_.adjust_interval) {
        adjust(table);
        periods_since_adjust_ = 0;
        creations_in_window_ = 0;
        redundant_in_window_ = 0;
    }
}

void
AdaptiveThreshold::adjust(const PhaseTable &table)
{
    // Pooled within-phase CPI dispersion, weighted by occupancy.
    double cov_num = 0.0;
    double cov_den = 0.0;
    for (const Phase &p : table.phases()) {
        if (p.sampleCount() < 2)
            continue;
        const double w = static_cast<double>(p.memberPeriods());
        cov_num += w * p.cpi().cov();
        cov_den += w;
    }
    const double pooled_cov = cov_den > 0.0 ? cov_num / cov_den : 0.0;

    const bool too_many_false_positives =
        creations_in_window_ > 0 &&
        static_cast<double>(redundant_in_window_) /
                static_cast<double>(creations_in_window_) >
            config_.max_redundant_fraction;

    double next = threshold_;
    if (pooled_cov > config_.max_phase_cov) {
        // Phases too coarse: tighten so real changes split off.
        next = threshold_ / config_.step;
    } else if (too_many_false_positives) {
        // Splitting hairs: relax to stop minting redundant phases.
        next = threshold_ * config_.step;
    }
    next = std::clamp(next, config_.min_threshold,
                      config_.max_threshold);
    if (next != threshold_) {
        threshold_ = next;
        ++adjustments_;
    }
}

} // namespace pgss::core

#include "core/pgss_controller.hh"

#include <cmath>
#include <limits>

#include "bbv/bbv_math.hh"
#include "obs/progress.hh"
#include "obs/spans.hh"
#include "obs/stats.hh"
#include "obs/timeline.hh"
#include "obs/trace.hh"
#include "stats/confidence.hh"
#include "stats/stratified.hh"
#include "util/logging.hh"

namespace pgss::core
{

PgssController::PgssController(const PgssConfig &config)
    : config_(config)
{
    util::panicIf(config.bbv_period == 0, "bbv_period must be nonzero");
    util::panicIf(config.detailed_sample == 0,
                  "detailed_sample must be nonzero");
    util::panicIf(config.detailed_warmup + config.detailed_sample >
                      config.bbv_period,
                  "sample window does not fit in the BBV period");
    counters_.threshold = config.threshold;
}

void
PgssController::registerStats(obs::Group &parent) const
{
    obs::Group &g = parent.child("pgss", "PGSS sampling controller");
    g.addCounter("periods", "BBV periods classified",
                 [this] { return counters_.periods; });
    g.addCounter("samples", "detailed samples taken",
                 [this] { return counters_.samples; });
    g.addCounter("phases", "phases created",
                 [this] { return counters_.phases; });
    g.addCounter("phase_changes", "period-to-period transitions",
                 [this] { return counters_.phase_changes; });
    g.addCounter("threshold_adjustments",
                 "adaptive threshold moves",
                 [this] { return counters_.threshold_adjustments; });
    g.addScalar("threshold", "current BBV angle threshold (radians)",
                [this] { return counters_.threshold; });
}

PgssResult
PgssController::run(sim::SimulationEngine &engine)
{
    PGSS_SPAN("sampling.pgss", Bench);
    PgssResult res;
    PhaseTable table(config_.compare_last_first);
    AdaptiveThreshold adaptive(config_.adaptive, config_.threshold);
    // Low-discrepancy (golden-ratio) offset sequence: successive
    // samples stratify across the period instead of relying on luck,
    // so micro-behaviours commensurate with the period are covered
    // in proportion after only a few samples.
    constexpr double golden = 0.6180339887498949;
    double jitter_phase =
        (config_.jitter_seed % 1024) / 1024.0;

    engine.setHashedBbvEnabled(true);

    // Each controller run is one named timeline run: the period-by-
    // period phase classifications and, per phase, the CI-convergence
    // curve (one point per credited sample).
    if (obs::TimelineRecorder *tl = obs::timelines())
        tl->beginRun("pgss");

    const std::uint64_t win =
        config_.detailed_warmup + config_.detailed_sample;
    bool sample_next_period = false;

    while (!engine.halted()) {
        // ---- One BBV sampling period, optionally containing a
        // detailed sample at a (jittered) offset.
        std::uint64_t chunk_ops = 0;
        bool have_sample = false;
        double sample_cpi = 0.0;

        if (sample_next_period) {
            const std::uint64_t slack = config_.bbv_period - win;
            std::uint64_t offset = 0;
            if (config_.jitter_samples && slack > 0) {
                jitter_phase += golden;
                jitter_phase -= static_cast<std::uint64_t>(
                    jitter_phase);
                offset = static_cast<std::uint64_t>(jitter_phase *
                                                    slack);
            }
            if (offset > 0)
                chunk_ops +=
                    engine.run(offset, sim::SimMode::FunctionalWarm)
                        .ops;
            if (obs::TraceSink *t = obs::traceSink())
                t->emit(obs::TraceKind::SampleOpen,
                        engine.totalOps());
            const sim::RunResult warm = engine.run(
                config_.detailed_warmup, sim::SimMode::DetailedWarm);
            const sim::RunResult meas = engine.run(
                config_.detailed_sample,
                sim::SimMode::DetailedMeasure);
            chunk_ops += warm.ops + meas.ops;
            if (meas.ops > 0) {
                have_sample = true;
                sample_cpi = static_cast<double>(meas.cycles) /
                             static_cast<double>(meas.ops);
            }
            const std::uint64_t rest =
                config_.bbv_period - offset - warm.ops - meas.ops;
            if (rest > 0)
                chunk_ops +=
                    engine.run(rest, sim::SimMode::FunctionalWarm).ops;
        } else {
            chunk_ops = engine
                            .run(config_.bbv_period,
                                 sim::SimMode::FunctionalWarm)
                            .ops;
        }
        if (chunk_ops == 0)
            break;

        // ---- Harvest and classify the period's BBV.
        const std::vector<double> bbv = engine.harvestHashedBbv();
        const MatchResult match =
            table.classify(bbv, adaptive.threshold());
        Phase &phase = table.phase(match.phase_id);
        phase.addOps(chunk_ops);

        ++counters_.periods;
        if (match.created)
            ++counters_.phases;
        if (match.changed)
            ++counters_.phase_changes;
        if (obs::TraceSink *t = obs::traceSink())
            t->emit(obs::TraceKind::PhaseClassified,
                    engine.totalOps(), match.phase_id,
                    (match.created ? 1u : 0u) |
                        (match.changed ? 2u : 0u),
                    match.angle_to_last);
        if (obs::TimelineRecorder *tl = obs::timelines())
            tl->recordPhase(engine.totalOps(), match.phase_id);
        if (obs::JobHandle *job = obs::currentJob())
            job->setPhase(match.phase_id, table.size());

        // The sample inside this period is credited to the phase the
        // period was classified as.
        if (have_sample) {
            phase.addSample(sample_cpi, engine.totalOps());
            ++res.n_samples;
            ++counters_.samples;
            if (obs::TraceSink *t = obs::traceSink())
                t->emit(obs::TraceKind::SampleClose,
                        engine.totalOps(), phase.id(), 0,
                        sample_cpi);
            if (config_.record_timeline)
                res.timeline.push_back(
                    {engine.totalOps(), phase.id(), sample_cpi});
        }

        // ---- Decide whether the next period carries a sample
        // (Figure 5: confidence bounds, then sample spreading).
        const bool converged = stats::withinConfidence(
            phase.cpi(), config_.confidence, config_.relative_error,
            config_.min_samples_per_phase);
        // One convergence-curve point per credited sample: the curve
        // of this phase's CI half-width closing (or not) over time.
        if (have_sample) {
            const double mean = phase.cpi().mean();
            const double hw = stats::ciHalfWidth(
                phase.cpi(), config_.confidence);
            const double ci_rel =
                mean != 0.0 ? hw / std::abs(mean) : hw;
            if (obs::TimelineRecorder *tl = obs::timelines())
                tl->recordConvergence(
                    phase.id(), engine.totalOps(),
                    phase.sampleCount(), mean, ci_rel, converged);
            if (obs::JobHandle *job = obs::currentJob())
                job->addSample(ci_rel);
        }
        const bool spaced =
            !config_.spread_samples ||
            phase.sampleCount() == 0 ||
            engine.totalOps() - phase.lastSampleOp() >=
                config_.min_sample_spacing;
        sample_next_period = !converged && spaced;

        const double threshold_before = adaptive.threshold();
        adaptive.onPeriod(table, match.created);
        if (adaptive.threshold() != threshold_before) {
            ++counters_.threshold_adjustments;
            counters_.threshold = adaptive.threshold();
            if (obs::TraceSink *t = obs::traceSink())
                t->emit(obs::TraceKind::ThresholdAdjust,
                        engine.totalOps(), 0, 0,
                        adaptive.threshold());
        }
    }

    engine.setHashedBbvEnabled(false);

    // ---- Estimate: occupancy-weighted per-phase CPI means. Phases
    // that never received a sample (typically one-period transition
    // phases, whose sampling opportunity fell into the following,
    // differently-classified period) donate their weight to the
    // nearest sampled phase by BBV angle, so no execution weight is
    // silently dropped from the stratified estimate.
    std::vector<double> weights(table.size());
    for (const Phase &p : table.phases())
        weights[p.id()] = static_cast<double>(p.ops());
    for (const Phase &p : table.phases()) {
        if (p.sampleCount() > 0 || weights[p.id()] == 0.0)
            continue;
        double best_angle = std::numeric_limits<double>::max();
        std::uint32_t nearest = p.id();
        for (const Phase &q : table.phases()) {
            if (q.sampleCount() == 0)
                continue;
            const double a = bbv::angleBetweenUnit(p.centroid(),
                                                   q.centroid());
            if (a < best_angle) {
                best_angle = a;
                nearest = q.id();
            }
        }
        if (nearest != p.id()) {
            weights[nearest] += weights[p.id()];
            weights[p.id()] = 0.0;
        }
    }

    stats::StratifiedEstimator est;
    for (const Phase &p : table.phases()) {
        stats::Stratum s;
        s.samples = p.cpi();
        s.weight = weights[p.id()];
        est.addStratum(s);

        PhaseSummary ps;
        ps.id = p.id();
        ps.member_periods = p.memberPeriods();
        ps.ops = p.ops();
        ps.samples = p.sampleCount();
        ps.mean_cpi = p.cpi().mean();
        ps.cpi_cov = p.cpi().cov();
        res.phases.push_back(ps);
    }

    res.est_cpi = est.mean();
    res.est_ipc = res.est_cpi > 0.0 ? 1.0 / res.est_cpi : 0.0;
    res.total_ops = engine.totalOps();
    res.n_phases = table.size();
    res.n_phase_changes = table.phaseChanges();
    res.mode_ops = engine.modeOps();
    res.detailed_ops = engine.modeOps().detailed();
    res.final_threshold = adaptive.threshold();
    res.threshold_adjustments = adaptive.adjustments();
    return res;
}

} // namespace pgss::core

/**
 * @file
 * One detected program phase: its BBV signature (a running centroid
 * of member vectors), its occupancy, and the detailed-sample CPI
 * statistics the per-phase confidence test runs on.
 */

#ifndef PGSS_CORE_PHASE_HH
#define PGSS_CORE_PHASE_HH

#include <cstdint>
#include <vector>

#include "stats/running_stats.hh"

namespace pgss::core
{

/** A phase profile. */
class Phase
{
  public:
    /** Create phase @p id from its first member BBV. */
    Phase(std::uint32_t id, std::vector<double> first_bbv);

    /** Phase identifier (creation order). */
    std::uint32_t id() const { return id_; }

    /** L2-normalised centroid of member BBVs. */
    const std::vector<double> &centroid() const { return centroid_; }

    /** Fold another member BBV into the centroid. */
    void addMember(const std::vector<double> &bbv);

    /** Number of BBV periods classified into this phase. */
    std::uint64_t memberPeriods() const { return member_periods_; }

    /** Instructions attributed to this phase. */
    std::uint64_t ops() const { return ops_; }

    /** Attribute @p n instructions to this phase. */
    void addOps(std::uint64_t n) { ops_ += n; }

    /** Detailed-sample CPI observations. */
    const stats::RunningStats &cpi() const { return cpi_; }

    /** Record a detailed sample taken at global op count @p at_op. */
    void addSample(double cpi, std::uint64_t at_op);

    /** Global op count of the most recent sample (0 if none). */
    std::uint64_t lastSampleOp() const { return last_sample_op_; }

    /** Number of detailed samples taken in this phase. */
    std::uint64_t sampleCount() const { return cpi_.count(); }

  private:
    std::uint32_t id_;
    std::vector<double> centroid_;
    std::vector<double> sum_; ///< unnormalised running sum
    std::uint64_t member_periods_ = 0;
    std::uint64_t ops_ = 0;
    stats::RunningStats cpi_;
    std::uint64_t last_sample_op_ = 0;
};

} // namespace pgss::core

#endif // PGSS_CORE_PHASE_HH

/**
 * @file
 * The phase table and matching policy of the Figure-5 flow chart: a
 * harvested BBV is first compared against the previous period's phase
 * (no change is the common case), then against every known phase; if
 * nothing falls within the angle threshold a new phase is created.
 */

#ifndef PGSS_CORE_PHASE_TABLE_HH
#define PGSS_CORE_PHASE_TABLE_HH

#include <cstdint>
#include <vector>

#include "core/phase.hh"

namespace pgss::core
{

/** Outcome of classifying one period's BBV. */
struct MatchResult
{
    std::uint32_t phase_id = 0;
    bool created = false;        ///< a new phase was opened
    bool changed = false;        ///< different phase than last period
    double angle_to_last = 0.0;  ///< angle to previous period's phase
};

/** All phases seen so far plus the classification logic. */
class PhaseTable
{
  public:
    /**
     * @param compare_last_first check the previous phase before
     *        scanning the whole table (the paper's fast path).
     */
    explicit PhaseTable(bool compare_last_first = true);

    /**
     * Classify @p unit_bbv (must be L2-normalised) under @p threshold
     * radians, updating match statistics and the winning phase's
     * centroid/occupancy.
     */
    MatchResult classify(const std::vector<double> &unit_bbv,
                         double threshold);

    /** Number of phases. */
    std::size_t size() const { return phases_.size(); }

    /** Phase by id. */
    Phase &phase(std::uint32_t id) { return phases_[id]; }
    const Phase &phase(std::uint32_t id) const { return phases_[id]; }

    /** All phases. */
    const std::vector<Phase> &phases() const { return phases_; }
    std::vector<Phase> &phases() { return phases_; }

    /** Id of the phase the last period was classified into. */
    std::uint32_t currentPhase() const { return current_; }

    /** Total phase transitions observed. */
    std::uint64_t phaseChanges() const { return changes_; }

    /** True until the first classification happens. */
    bool empty() const { return phases_.empty(); }

  private:
    bool compare_last_first_;
    std::vector<Phase> phases_;
    std::uint32_t current_ = 0;
    std::uint64_t changes_ = 0;
};

} // namespace pgss::core

#endif // PGSS_CORE_PHASE_TABLE_HH

/**
 * @file
 * pgss_lint — static analysis of generated ISA workloads (DESIGN.md
 * section 10). Builds the named suite workloads (or every one with
 * --all / no names) and runs the progcheck verifier over each.
 *
 *   pgss_lint                        lint all ten suite workloads
 *   pgss_lint ammp crafty            lint a subset
 *   pgss_lint --input 2 --scale 0.5  pick input set / build scale
 *   pgss_lint --json                 machine-readable findings (the
 *                                    shared pgss-findings envelope)
 *   pgss_lint --warnings-as-errors   CI-strict mode
 *
 * Exit status: 0 when every program is free of error-severity
 * findings, 1 otherwise, 2 on usage errors. Text findings go to
 * stdout, one per line, prefixed with the workload name so they
 * survive grep over CI logs.
 */

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "progcheck/verifier.hh"
#include "workload/suite.hh"

namespace
{

int
usage()
{
    std::cerr
        << "usage: pgss_lint [options] [workload...]\n"
        << "  --all                lint every suite workload "
           "(default)\n"
        << "  --input <0-2>        input-set variant (default 0)\n"
        << "  --scale <x>          build scale (default 1.0)\n"
        << "  --json               findings envelope on stdout\n"
        << "  --warnings-as-errors exit 1 on warnings too\n"
        << "  --quiet              only print findings, no summary\n";
    return 2;
}

struct LintOptions
{
    std::vector<std::string> names;
    std::uint32_t input = 0;
    double scale = 1.0;
    bool json = false;
    bool warnings_as_errors = false;
    bool quiet = false;
};

bool
parseArgs(const std::vector<std::string> &args, LintOptions &opt)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--all") {
            opt.names.clear();
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--warnings-as-errors") {
            opt.warnings_as_errors = true;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--input" && i + 1 < args.size()) {
            opt.input =
                static_cast<std::uint32_t>(std::stoul(args[++i]));
        } else if (arg == "--scale" && i + 1 < args.size()) {
            opt.scale = std::stod(args[++i]);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "pgss_lint: unknown option '" << arg << "'\n";
            return false;
        } else {
            opt.names.push_back(arg);
        }
    }
    if (opt.input >= pgss::workload::num_inputs) {
        std::cerr << "pgss_lint: input must be 0.."
                  << pgss::workload::num_inputs - 1 << "\n";
        return false;
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    for (const std::string &arg : args)
        if (arg == "-h" || arg == "--help")
            return usage();

    LintOptions opt;
    if (!parseArgs(args, opt))
        return usage();
    if (opt.names.empty())
        opt.names = pgss::workload::suiteNames();

    std::size_t total_errors = 0;
    std::size_t total_warnings = 0;
    std::vector<std::string> program_json;

    // Validate names up front: buildWorkload() panics on unknown
    // names, which is the right behaviour in-process but a poor CLI
    // experience.
    const std::vector<std::string> &known =
        pgss::workload::suiteNames();
    for (const std::string &name : opt.names) {
        if (std::find(known.begin(), known.end(), name) ==
                known.end() &&
            name != "wupwise") {
            std::cerr << "pgss_lint: unknown workload '" << name
                      << "'\n";
            return 2;
        }
    }

    for (const std::string &name : opt.names) {
        const pgss::workload::BuiltWorkload built =
            pgss::workload::buildWorkload(name, opt.scale, opt.input);

        const pgss::progcheck::Report report =
            pgss::progcheck::verify(built.program);
        const std::size_t errors =
            report.count(pgss::progcheck::Severity::Error);
        const std::size_t warnings =
            report.count(pgss::progcheck::Severity::Warning);
        total_errors += errors;
        total_warnings += warnings;

        if (opt.json) {
            program_json.push_back(pgss::progcheck::reportJson(report));
        } else {
            for (const pgss::progcheck::Finding &f : report.findings)
                std::cout << name << ": " << f.str() << "\n";
            if (!opt.quiet)
                std::cout << name << ": " << report.code_size
                          << " instructions, " << errors
                          << " error(s), " << warnings
                          << " warning(s)\n";
        }
    }

    if (opt.json) {
        std::cout << pgss::progcheck::findingsEnvelope("pgss_lint",
                                                       program_json)
                  << "\n";
    } else if (!opt.quiet) {
        std::cout << opt.names.size() << " program(s) linted: "
                  << total_errors << " error(s), " << total_warnings
                  << " warning(s)\n";
    }

    if (total_errors > 0)
        return 1;
    if (opt.warnings_as_errors && total_warnings > 0)
        return 1;
    return 0;
}

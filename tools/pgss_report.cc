/**
 * @file
 * pgss_report — offline analysis of run-report JSON and trace JSONL
 * artefacts produced by the observability layer (DESIGN.md section 8).
 *
 *   pgss_report show report.json          render tables + timelines
 *   pgss_report report.json               same ("show" is the default)
 *   pgss_report diff a.json b.json        percent deltas, A vs B
 *   pgss_report profile report.json       span profile tables
 *                                         (--top=N widens the list)
 *   pgss_report profile a.json b.json     per-span self-time deltas
 *   pgss_report metrics report.json       Prometheus text exposition
 *                                         of the report's numbers —
 *                                         the same families a live
 *                                         --serve=PORT run exposes on
 *                                         GET /metrics, for pushing
 *                                         finished-run results at a
 *                                         textfile collector
 *   pgss_report check report.json [trace.jsonl]
 *                                         sanity checks; exit 1 on any
 *                                         violation (the CI gate)
 *     --baseline=BENCH.json [--tolerance=0.25]
 *                                         also gate perf.*.mips
 *                                         against a committed bench
 *                                         snapshot
 *   pgss_report findings f.json           render a pgss-findings
 *                                         envelope (pgss_lint --json /
 *                                         pgss_tracecheck --json);
 *                                         exit 1 on error findings
 *
 * All output is plain text so it survives CI logs and grep.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/analyze.hh"
#include "obs/json_read.hh"
#include "obs/prometheus.hh"

namespace
{

using pgss::obs::CheckResult;
using pgss::obs::LoadedReport;

int
usage()
{
    std::cerr
        << "usage: pgss_report [show] <report.json>\n"
        << "       pgss_report diff <a.json> <b.json>\n"
        << "       pgss_report profile <report.json> [--top=N]\n"
        << "       pgss_report profile <a.json> <b.json>\n"
        << "       pgss_report metrics <report.json>\n"
        << "       pgss_report check <report.json> [trace.jsonl]\n"
        << "                   [--baseline=<bench.json>]"
           " [--tolerance=<frac>]\n"
        << "       pgss_report findings <findings.json>\n";
    return 2;
}

/** Pop "--name=value" from @p args into @p value; true if present. */
bool
takeOption(std::vector<std::string> &args, const std::string &name,
           std::string &value)
{
    const std::string prefix = "--" + name + "=";
    for (auto it = args.begin(); it != args.end(); ++it) {
        if (it->rfind(prefix, 0) == 0) {
            value = it->substr(prefix.size());
            args.erase(it);
            return true;
        }
    }
    return false;
}

bool
load(const std::string &path, LoadedReport &out)
{
    std::string err;
    if (pgss::obs::loadReport(path, out, &err)) {
        return true;
    }
    std::cerr << "pgss_report: " << err << "\n";
    return false;
}

void
printCheck(const std::string &what, const CheckResult &res)
{
    for (const std::string &v : res.violations)
        std::cout << "VIOLATION " << what << ": " << v << "\n";
    for (const std::string &w : res.warnings)
        std::cout << "warning " << what << ": " << w << "\n";
}

int
cmdShow(const std::string &path)
{
    LoadedReport report;
    if (!load(path, report))
        return 1;
    pgss::obs::renderReport(std::cout, report);
    return 0;
}

int
cmdDiff(const std::string &path_a, const std::string &path_b)
{
    LoadedReport a, b;
    if (!load(path_a, a) || !load(path_b, b))
        return 1;
    pgss::obs::renderDiff(std::cout, a, b);
    return 0;
}

int
cmdProfile(const std::vector<std::string> &paths, std::size_t top_n)
{
    LoadedReport a;
    if (!load(paths[0], a))
        return 1;
    if (paths.size() == 2) {
        LoadedReport b;
        if (!load(paths[1], b))
            return 1;
        pgss::obs::renderProfileDiff(std::cout, a, b);
        return 0;
    }
    pgss::obs::renderProfile(std::cout, a, top_n);
    return 0;
}

int
cmdMetrics(const std::string &path)
{
    LoadedReport report;
    if (!load(path, report))
        return 1;
    pgss::obs::renderPromText(
        std::cout, pgss::obs::familiesFromReport(report));
    return 0;
}

int
cmdCheck(const std::string &report_path,
         const std::string &trace_path,
         const std::string &baseline_path, double tolerance)
{
    LoadedReport report;
    if (!load(report_path, report))
        return 1;
    CheckResult total = pgss::obs::checkReport(report);
    printCheck("report", total);

    if (!baseline_path.empty()) {
        LoadedReport baseline;
        if (!load(baseline_path, baseline))
            return 1;
        const CheckResult bres = pgss::obs::checkAgainstBaseline(
            report, baseline, tolerance);
        printCheck("baseline", bres);
        total.merge(bres);
    }

    if (!trace_path.empty()) {
        std::ifstream trace(trace_path, std::ios::binary);
        if (!trace) {
            std::cerr << "pgss_report: cannot open '" << trace_path
                      << "'\n";
            return 1;
        }
        const CheckResult tres = pgss::obs::checkTrace(trace);
        printCheck("trace", tres);
        std::cout << tres.trace_events << " trace events checked\n";
        total.merge(tres);
    }

    if (!total.ok()) {
        std::cout << "FAIL: " << total.violations.size()
                  << " violation(s)\n";
        return 1;
    }
    std::cout << "OK ("
              << total.warnings.size() << " warning(s))\n";
    return 0;
}

/**
 * Render a pgss-findings envelope — the shared JSON schema emitted by
 * pgss_lint --json and pgss_tracecheck --json. tcheck findings carry
 * an extra "trace" member; its presence is what distinguishes the two
 * finding shapes, so one renderer covers both tools.
 */
int
cmdFindings(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "pgss_report: cannot open '" << path << "'\n";
        return 1;
    }
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    pgss::obs::JsonValue doc;
    std::string err;
    if (!pgss::obs::parseJson(text, doc, &err)) {
        std::cerr << "pgss_report: " << path << ": " << err << "\n";
        return 1;
    }
    const pgss::obs::JsonValue *schema = doc.get("schema");
    if (!doc.isObject() || schema == nullptr ||
        schema->string != "pgss-findings") {
        std::cerr << "pgss_report: '" << path
                  << "' is not a pgss-findings artifact\n";
        return 1;
    }
    const pgss::obs::JsonValue *tool = doc.get("tool");
    const pgss::obs::JsonValue *version = doc.get("version");
    std::cout << (tool != nullptr ? tool->string : "<unknown tool>")
              << " findings (schema v"
              << (version != nullptr ? version->asUint() : 0)
              << ")\n";

    std::uint64_t total_errors = 0;
    std::uint64_t total_warnings = 0;
    const pgss::obs::JsonValue *programs = doc.get("programs");
    if (programs != nullptr && programs->isArray()) {
        for (const pgss::obs::JsonValue &p : programs->array) {
            const pgss::obs::JsonValue *name = p.get("program");
            const pgss::obs::JsonValue *traces = p.get("num_traces");
            const pgss::obs::JsonValue *code = p.get("code_size");
            const std::uint64_t errors =
                p.get("errors") != nullptr ? p.get("errors")->asUint()
                                           : 0;
            const std::uint64_t warnings =
                p.get("warnings") != nullptr
                    ? p.get("warnings")->asUint()
                    : 0;
            total_errors += errors;
            total_warnings += warnings;

            std::cout << (name != nullptr ? name->string : "<unnamed>")
                      << ": ";
            if (code != nullptr)
                std::cout << code->asUint() << " instructions, ";
            if (traces != nullptr)
                std::cout << traces->asUint() << " traces, ";
            std::cout << errors << " error(s), " << warnings
                      << " warning(s)\n";

            const pgss::obs::JsonValue *findings = p.get("findings");
            if (findings == nullptr || !findings->isArray())
                continue;
            for (const pgss::obs::JsonValue &f : findings->array) {
                const pgss::obs::JsonValue *sev = f.get("severity");
                const pgss::obs::JsonValue *fcode = f.get("code");
                const pgss::obs::JsonValue *trace = f.get("trace");
                const pgss::obs::JsonValue *pc = f.get("pc");
                const pgss::obs::JsonValue *msg = f.get("message");
                std::cout << "  "
                          << (sev != nullptr ? sev->string : "?")
                          << " "
                          << (fcode != nullptr ? fcode->string : "?");
                if (trace != nullptr)
                    std::cout << " t" << trace->asUint();
                std::cout << " @"
                          << (pc != nullptr ? pc->asUint() : 0)
                          << ": "
                          << (msg != nullptr ? msg->string : "")
                          << "\n";
            }
        }
    }
    std::cout << total_errors << " error(s), " << total_warnings
              << " warning(s) total\n";
    return total_errors > 0 ? 1 : 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty() || args[0] == "-h" || args[0] == "--help")
        return usage();

    if (args[0] == "diff")
        return args.size() == 3 ? cmdDiff(args[1], args[2]) : usage();
    if (args[0] == "profile") {
        std::string top = "20";
        takeOption(args, "top", top);
        if (args.size() < 2 || args.size() > 3)
            return usage();
        return cmdProfile({args.begin() + 1, args.end()},
                          static_cast<std::size_t>(
                              std::strtoul(top.c_str(), nullptr, 10)));
    }
    if (args[0] == "check") {
        std::string baseline, tolerance = "0.25";
        takeOption(args, "baseline", baseline);
        takeOption(args, "tolerance", tolerance);
        if (args.size() < 2 || args.size() > 3)
            return usage();
        return cmdCheck(args[1], args.size() == 3 ? args[2] : "",
                        baseline,
                        std::strtod(tolerance.c_str(), nullptr));
    }
    if (args[0] == "findings")
        return args.size() == 2 ? cmdFindings(args[1]) : usage();
    if (args[0] == "metrics")
        return args.size() == 2 ? cmdMetrics(args[1]) : usage();
    if (args[0] == "show")
        return args.size() == 2 ? cmdShow(args[1]) : usage();
    return args.size() == 1 ? cmdShow(args[0]) : usage();
}

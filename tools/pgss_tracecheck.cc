/**
 * @file
 * pgss_tracecheck — static validation of superblock trace translation
 * (DESIGN.md section 15). Builds the named suite workloads (or every
 * one with --all / no names), forms superblock traces under each
 * requested formation config, and runs the tcheck translation
 * validator over each (program, SuperblockSet) pair.
 *
 *   pgss_tracecheck                      check all ten suite workloads
 *   pgss_tracecheck ammp crafty          check a subset
 *   pgss_tracecheck --input 2 --scale .5 pick input set / build scale
 *   pgss_tracecheck --max-ops 64         formation config (repeatable)
 *   pgss_tracecheck --json               machine-readable findings
 *   pgss_tracecheck --warnings-as-errors CI-strict mode
 *
 * JSON output is the shared pgss-findings envelope (same schema as
 * pgss_lint --json; pgss_report `findings` renders both). Exit
 * status: 0 when every set is free of error-severity findings, 1
 * otherwise, 2 on usage errors.
 */

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "cpu/superblock.hh"
#include "tcheck/verify.hh"
#include "workload/suite.hh"

namespace
{

int
usage()
{
    std::cerr
        << "usage: pgss_tracecheck [options] [workload...]\n"
        << "  --all                check every suite workload "
           "(default)\n"
        << "  --input <0-2>        input-set variant (default 0)\n"
        << "  --scale <x>          build scale (default 1.0)\n"
        << "  --max-ops <n>        per-trace op cap to form under; "
           "repeat for a config sweep (default 256)\n"
        << "  --json               findings envelope on stdout\n"
        << "  --warnings-as-errors exit 1 on warnings too\n"
        << "  --quiet              only print findings, no summary\n";
    return 2;
}

struct CheckOptions
{
    std::vector<std::string> names;
    std::vector<std::uint32_t> max_ops;
    std::uint32_t input = 0;
    double scale = 1.0;
    bool json = false;
    bool warnings_as_errors = false;
    bool quiet = false;
};

bool
parseArgs(const std::vector<std::string> &args, CheckOptions &opt)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--all") {
            opt.names.clear();
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--warnings-as-errors") {
            opt.warnings_as_errors = true;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--input" && i + 1 < args.size()) {
            opt.input =
                static_cast<std::uint32_t>(std::stoul(args[++i]));
        } else if (arg == "--scale" && i + 1 < args.size()) {
            opt.scale = std::stod(args[++i]);
        } else if (arg == "--max-ops" && i + 1 < args.size()) {
            opt.max_ops.push_back(
                static_cast<std::uint32_t>(std::stoul(args[++i])));
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "pgss_tracecheck: unknown option '" << arg
                      << "'\n";
            return false;
        } else {
            opt.names.push_back(arg);
        }
    }
    if (opt.input >= pgss::workload::num_inputs) {
        std::cerr << "pgss_tracecheck: input must be 0.."
                  << pgss::workload::num_inputs - 1 << "\n";
        return false;
    }
    for (std::uint32_t cap : opt.max_ops) {
        if (cap == 0) {
            std::cerr << "pgss_tracecheck: --max-ops must be >= 1\n";
            return false;
        }
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    for (const std::string &arg : args)
        if (arg == "-h" || arg == "--help")
            return usage();

    CheckOptions opt;
    if (!parseArgs(args, opt))
        return usage();
    if (opt.names.empty())
        opt.names = pgss::workload::suiteNames();
    if (opt.max_ops.empty())
        opt.max_ops.push_back(pgss::cpu::SuperblockConfig{}.max_ops);

    const std::vector<std::string> &known =
        pgss::workload::suiteNames();
    for (const std::string &name : opt.names) {
        if (std::find(known.begin(), known.end(), name) ==
            known.end()) {
            std::cerr << "pgss_tracecheck: unknown workload '" << name
                      << "'\n";
            return 2;
        }
    }

    std::size_t total_errors = 0;
    std::size_t total_warnings = 0;
    std::size_t sets_checked = 0;
    std::vector<std::string> program_json;

    for (const std::string &name : opt.names) {
        const pgss::workload::BuiltWorkload built =
            pgss::workload::buildWorkload(name, opt.scale, opt.input);

        for (std::uint32_t cap : opt.max_ops) {
            const pgss::cpu::SuperblockConfig config{cap};
            const pgss::cpu::SuperblockSet set =
                pgss::cpu::formSuperblocks(built.program, config);
            pgss::tcheck::Report report =
                pgss::tcheck::verifyTraces(built.program, set);
            // Disambiguate config-sweep entries in reports and logs.
            std::string label = name;
            if (opt.max_ops.size() > 1)
                label += "#max_ops=" + std::to_string(cap);
            report.program = label;

            const std::size_t errors = report.count(
                pgss::tcheck::Severity::Error);
            const std::size_t warnings = report.count(
                pgss::tcheck::Severity::Warning);
            total_errors += errors;
            total_warnings += warnings;
            ++sets_checked;

            if (opt.json) {
                program_json.push_back(
                    pgss::tcheck::reportJson(report));
            } else {
                for (const pgss::tcheck::Finding &f : report.findings)
                    std::cout << label << ": " << f.str() << "\n";
                if (!opt.quiet)
                    std::cout << label << ": " << report.num_traces
                              << " traces, " << report.pool_size
                              << " pool ops, " << errors
                              << " error(s), " << warnings
                              << " warning(s)\n";
            }
        }
    }

    if (opt.json) {
        std::cout << pgss::tcheck::findingsEnvelope("pgss_tracecheck",
                                                    program_json)
                  << "\n";
    } else if (!opt.quiet) {
        std::cout << sets_checked << " trace set(s) checked: "
                  << total_errors << " error(s), " << total_warnings
                  << " warning(s)\n";
    }

    if (total_errors > 0)
        return 1;
    if (opt.warnings_as_errors && total_warnings > 0)
        return 1;
    return 0;
}

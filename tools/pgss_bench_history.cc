/**
 * @file
 * pgss_bench_history — the perf-history side of the observability
 * layer (DESIGN.md section 11). Distils run reports into small
 * committed bench snapshots (BENCH_pr<N>.json at the repo root) and
 * reads the trajectory back:
 *
 *   pgss_bench_history snapshot report.json BENCH_pr5.json
 *                                  distil perf.<mode> throughput into
 *                                  a pgss-bench-snapshot (--label=pr5
 *                                  overrides the label derived from
 *                                  the output filename)
 *   pgss_bench_history check report.json --baseline=BENCH_pr4.json
 *                                  [--tolerance=0.25]
 *                                  regression gate: exit 1 when any
 *                                  perf.*.mips fell more than the
 *                                  tolerance below the baseline;
 *                                  exit 3 when the baseline itself is
 *                                  missing, malformed, or lacks a
 *                                  perf mode the report carries (a
 *                                  setup problem, not a perf
 *                                  regression — CI can tell the two
 *                                  apart)
 *   pgss_bench_history list BENCH_*.json
 *                                  the trajectory: one row per
 *                                  snapshot, one column per mode MIPS
 *
 * CI appends one snapshot per PR from the perf-smoke fig13 run; the
 * committed baseline the gate compares against is refreshed manually
 * when a deliberate perf change lands.
 */

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/analyze.hh"
#include "util/atomic_file.hh"
#include "util/table.hh"

namespace
{

using pgss::obs::CheckResult;
using pgss::obs::JsonValue;
using pgss::obs::LoadedReport;

int
usage()
{
    std::cerr
        << "usage: pgss_bench_history snapshot <report.json> "
           "<out.json> [--label=<s>]\n"
        << "       pgss_bench_history check <report.json> "
           "--baseline=<bench.json> [--tolerance=<frac>]\n"
        << "       pgss_bench_history list <bench.json>...\n";
    return 2;
}

bool
load(const std::string &path, LoadedReport &out)
{
    std::string err;
    if (pgss::obs::loadReport(path, out, &err))
        return true;
    std::cerr << "pgss_bench_history: " << err << "\n";
    return false;
}

/** Pop "--name=value" from @p args into @p value; true if present. */
bool
takeOption(std::vector<std::string> &args, const std::string &name,
           std::string &value)
{
    const std::string prefix = "--" + name + "=";
    for (auto it = args.begin(); it != args.end(); ++it) {
        if (it->rfind(prefix, 0) == 0) {
            value = it->substr(prefix.size());
            args.erase(it);
            return true;
        }
    }
    return false;
}

/** "results/BENCH_pr5.json" -> "pr5" (filename minus prefix/suffix). */
std::string
labelFromPath(const std::string &path)
{
    std::string name = path;
    const std::size_t slash = name.find_last_of("/\\");
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    if (name.rfind("BENCH_", 0) == 0)
        name = name.substr(6);
    const std::size_t dot = name.rfind('.');
    if (dot != std::string::npos)
        name = name.substr(0, dot);
    return name;
}

int
cmdSnapshot(const std::string &report_path,
            const std::string &out_path, std::string label)
{
    LoadedReport report;
    if (!load(report_path, report))
        return 1;
    if (label.empty())
        label = labelFromPath(out_path);
    const std::string doc =
        pgss::obs::benchSnapshotFromReport(report, label);
    std::string err;
    if (!pgss::util::atomicWriteFile(out_path, doc.data(), doc.size(),
                                     nullptr, &err)) {
        std::cerr << "pgss_bench_history: cannot write '" << out_path
                  << "' (" << err << ")\n";
        return 1;
    }
    std::cout << "wrote " << out_path << " (label " << label
              << ")\n";
    return 0;
}

// check's exit codes: 0 ok, 1 regression, 2 usage, 3 bad baseline.
constexpr int kExitBadBaseline = 3;

/**
 * Load the gate's baseline snapshot, separating "the baseline is
 * missing/broken" (setup problem, exit 3) from "the run regressed"
 * (exit 1). A snapshot with no perf.<mode>.mips values would make the
 * gate pass vacuously, so it counts as malformed too.
 */
bool
loadBaseline(const std::string &path, LoadedReport &out)
{
    std::string err;
    bool ok = pgss::obs::loadReport(path, out, &err);
    if (ok) {
        bool any_mips = false;
        for (const auto &[p, v] : out.values)
            any_mips = any_mips ||
                       (p.rfind("perf.", 0) == 0 && p.size() > 5 &&
                        p.compare(p.size() - 5, 5, ".mips") == 0);
        if (!any_mips) {
            ok = false;
            err = "'" + path + "' has no perf.<mode>.mips values";
        }
    }
    if (!ok)
        std::cerr << "pgss_bench_history: bad baseline: " << err
                  << "; regenerate it with: pgss_bench_history "
                     "snapshot <report.json> "
                  << path << "\n";
    return ok;
}

/**
 * Every perf.<mode>.mips the report carries must exist in the
 * baseline, or the gate would silently skip that mode — exactly the
 * failure mode a new backend introduces (its key is absent from every
 * older snapshot). Missing modes are a baseline-coverage problem
 * (exit 3), not a regression.
 */
bool
baselineCoversReportModes(const LoadedReport &report,
                          const LoadedReport &baseline,
                          const std::string &baseline_path)
{
    bool covered = true;
    for (const auto &[path, v] : report.values) {
        if (path.rfind("perf.", 0) != 0 || path.size() < 5 ||
            path.compare(path.size() - 5, 5, ".mips") != 0)
            continue;
        if (!std::isfinite(v) || v <= 0.0)
            continue; // untimed mode in this run: nothing to gate
        if (std::isnan(baseline.value(path))) {
            std::cerr << "pgss_bench_history: baseline "
                      << baseline_path << " has no " << path
                      << " (mode missing from baseline); refresh it "
                         "with: pgss_bench_history snapshot "
                         "<report.json> "
                      << baseline_path << "\n";
            covered = false;
        }
    }
    return covered;
}

int
cmdCheck(const std::string &report_path,
         const std::string &baseline_path, double tolerance)
{
    LoadedReport report, baseline;
    if (!load(report_path, report))
        return 1;
    if (!loadBaseline(baseline_path, baseline))
        return kExitBadBaseline;
    if (!baselineCoversReportModes(report, baseline, baseline_path))
        return kExitBadBaseline;
    const CheckResult res = pgss::obs::checkAgainstBaseline(
        report, baseline, tolerance);
    for (const std::string &v : res.violations)
        std::cout << "VIOLATION baseline: " << v << "\n";
    for (const std::string &w : res.warnings)
        std::cout << "warning baseline: " << w << "\n";
    if (!res.ok()) {
        std::cout << "FAIL: " << res.violations.size()
                  << " regression(s) vs " << baseline_path << "\n";
        return 1;
    }
    std::cout << "OK vs " << baseline_path << " (tolerance "
              << tolerance * 100.0 << "%, " << res.warnings.size()
              << " warning(s))\n";
    return 0;
}

int
cmdList(const std::vector<std::string> &paths)
{
    std::vector<LoadedReport> snaps(paths.size());
    for (std::size_t i = 0; i < paths.size(); ++i)
        if (!load(paths[i], snaps[i]))
            return 1;

    // Columns: every perf.<mode>.mips path seen anywhere, in first-
    // seen (report/mode) order so the table is stable across runs.
    std::vector<std::string> modes;
    for (const LoadedReport &s : snaps)
        for (const auto &[path, v] : s.values) {
            if (path.rfind("perf.", 0) != 0 || path.size() < 5 ||
                path.compare(path.size() - 5, 5, ".mips") != 0)
                continue;
            const std::string mode =
                path.substr(5, path.size() - 10);
            bool seen = false;
            for (const std::string &m : modes)
                seen = seen || m == mode;
            if (!seen)
                modes.push_back(mode);
        }

    pgss::util::Table t("bench trajectory (host MIPS per mode)");
    std::vector<std::string> header = {"snapshot"};
    header.insert(header.end(), modes.begin(), modes.end());
    t.setHeader(header);
    for (std::size_t i = 0; i < snaps.size(); ++i) {
        const JsonValue *label = snaps[i].doc.get("label");
        std::vector<std::string> row = {
            label && label->isString() ? label->string
                                       : labelFromPath(paths[i])};
        for (const std::string &mode : modes) {
            const double v =
                snaps[i].value("perf." + mode + ".mips");
            char buf[40];
            if (std::isnan(v))
                row.push_back("");
            else {
                std::snprintf(buf, sizeof(buf), "%.1f", v);
                row.push_back(buf);
            }
        }
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty() || args[0] == "-h" || args[0] == "--help")
        return usage();

    if (args[0] == "snapshot") {
        std::string label;
        takeOption(args, "label", label);
        return args.size() == 3 ? cmdSnapshot(args[1], args[2], label)
                                : usage();
    }
    if (args[0] == "check") {
        std::string baseline, tolerance = "0.25";
        takeOption(args, "baseline", baseline);
        takeOption(args, "tolerance", tolerance);
        if (args.size() != 2 || baseline.empty())
            return usage();
        return cmdCheck(args[1], baseline,
                        std::strtod(tolerance.c_str(), nullptr));
    }
    if (args[0] == "list")
        return args.size() >= 2
                   ? cmdList({args.begin() + 1, args.end()})
                   : usage();
    return usage();
}

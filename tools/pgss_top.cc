/**
 * @file
 * pgss_top — live monitor for a served bench run (DESIGN.md section
 * 12). Polls GET /status on a process started with --serve=PORT (or
 * PGSS_SERVE_PORT) and renders a refreshing per-job table: progress
 * against the entry's expected instruction budget, current phase,
 * detailed samples credited, CI relative half-width, host MIPS, ETA.
 *
 *   pgss_top --port=9464                  poll localhost, 1s refresh
 *   pgss_top --host=10.0.0.7 --port=9464  remote run
 *   pgss_top --port=9464 --interval=0.2   faster refresh
 *   pgss_top --port=9464 --once           one snapshot, no clearing
 *                                         (scriptable / CI-friendly)
 *
 * Exit: 0 when the run finishes (the server goes away after we saw
 * it), 1 when the server never answered (--once or first contact).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_read.hh"
#include "util/env.hh"
#include "util/net/http.hh"
#include "util/table.hh"

namespace
{

using pgss::obs::JsonValue;

int
usage()
{
    std::cerr << "usage: pgss_top --port=<p> [--host=<h>]"
                 " [--interval=<sec>] [--once]\n"
              << "       (PGSS_SERVE_PORT is the --port default)\n";
    return 2;
}

/** Pop "--name=value" from @p args into @p value; true if present. */
bool
takeOption(std::vector<std::string> &args, const std::string &name,
           std::string &value)
{
    const std::string prefix = "--" + name + "=";
    for (auto it = args.begin(); it != args.end(); ++it) {
        if (it->rfind(prefix, 0) == 0) {
            value = it->substr(prefix.size());
            args.erase(it);
            return true;
        }
    }
    return false;
}

/** Pop bare "--name"; true if present. */
bool
takeFlag(std::vector<std::string> &args, const std::string &name)
{
    const std::string flag = "--" + name;
    for (auto it = args.begin(); it != args.end(); ++it) {
        if (*it == flag) {
            args.erase(it);
            return true;
        }
    }
    return false;
}

std::string
fmtDuration(double s)
{
    char buf[32];
    if (s < 0.0)
        return "-";
    if (s < 90.0)
        std::snprintf(buf, sizeof(buf), "%.0fs", s);
    else if (s < 5400.0)
        std::snprintf(buf, sizeof(buf), "%.1fm", s / 60.0);
    else
        std::snprintf(buf, sizeof(buf), "%.1fh", s / 3600.0);
    return buf;
}

std::string
fmt(const char *f, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), f, v);
    return buf;
}

/** Render one /status document as the top table. */
void
render(const JsonValue &doc, bool clear)
{
    if (clear)
        std::fputs("\033[H\033[J", stdout); // home + clear below

    const JsonValue *prog = doc.get("program");
    const JsonValue *totals = doc.get("totals");
    const double uptime =
        doc.get("uptime_seconds")
            ? doc.get("uptime_seconds")->asNumber()
            : 0.0;
    std::printf(
        "pgss_top - %s  up %s  jobs %llu run / %llu done"
        " / %llu stalled  %.1f Mops retired, %llu samples\n\n",
        prog && prog->isString() ? prog->string.c_str() : "?",
        fmtDuration(uptime).c_str(),
        totals ? (unsigned long long)totals->get("jobs_running")
                     ->asUint()
               : 0ULL,
        totals ? (unsigned long long)totals->get("jobs_done")
                     ->asUint()
               : 0ULL,
        totals ? (unsigned long long)totals->get("jobs_stalled")
                     ->asUint()
               : 0ULL,
        totals ? totals->get("ops")->asNumber() / 1e6 : 0.0,
        totals ? (unsigned long long)totals->get("samples")->asUint()
               : 0ULL);

    pgss::util::Table t("");
    t.setHeader({"job", "entry", "state", "progress", "phase",
                 "samples", "ci%", "mips", "elapsed", "eta"});
    const JsonValue *jobs = doc.get("jobs");
    if (jobs && jobs->isArray()) {
        for (const JsonValue &j : jobs->array) {
            const std::uint64_t ops =
                j.get("ops") ? j.get("ops")->asUint() : 0;
            const std::uint64_t expected =
                j.get("expected_ops")
                    ? j.get("expected_ops")->asUint()
                    : 0;
            std::string progress;
            if (expected > 0) {
                const double pct =
                    100.0 * static_cast<double>(ops) /
                    static_cast<double>(expected);
                progress = fmt("%.0f%%", pct < 100.0 ? pct : 100.0);
            } else {
                progress = fmt("%.1fM", ops / 1e6);
            }
            const JsonValue *state = j.get("state");
            const JsonValue *entry = j.get("entry");
            const double ci =
                j.get("ci_rel") ? j.get("ci_rel")->asNumber() : 0.0;
            const double eta = j.get("eta_seconds")
                                   ? j.get("eta_seconds")->asNumber()
                                   : -1.0;
            t.addRow(
                {std::to_string(j.get("job") ? j.get("job")->asUint()
                                             : 0),
                 entry && entry->isString() ? entry->string : "?",
                 state && state->isString() ? state->string : "?",
                 progress,
                 j.get("phases")
                     ? std::to_string(j.get("phases")->asUint())
                     : "0",
                 j.get("samples")
                     ? std::to_string(j.get("samples")->asUint())
                     : "0",
                 fmt("%.2f", ci * 100.0), // CI half-width, % of mean
                 fmt("%.1f",
                     j.get("mips") ? j.get("mips")->asNumber() : 0.0),
                 fmtDuration(j.get("elapsed_seconds")
                                 ? j.get("elapsed_seconds")
                                       ->asNumber()
                                 : 0.0),
                 fmtDuration(eta)});
        }
    }
    t.print(std::cout);
    std::cout.flush();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    std::string host = "127.0.0.1";
    std::string port_s = pgss::util::envString("PGSS_SERVE_PORT", "");
    std::string interval_s = "1.0";
    takeOption(args, "host", host);
    takeOption(args, "port", port_s);
    takeOption(args, "interval", interval_s);
    const bool once = takeFlag(args, "once");
    if (!args.empty() || port_s.empty())
        return usage();

    const int port = std::atoi(port_s.c_str());
    if (port <= 0 || port > 65535) {
        std::cerr << "pgss_top: bad port '" << port_s << "'\n";
        return 2;
    }
    double interval = std::strtod(interval_s.c_str(), nullptr);
    if (!(interval > 0.05))
        interval = 1.0;

    bool ever_connected = false;
    for (;;) {
        pgss::util::net::HttpResponse resp;
        std::string err;
        // First contact retries with backoff: pgss_top is routinely
        // launched moments before the run binds its port. Once
        // connected, a single failed poll means the run finished.
        pgss::util::net::RetryPolicy retry;
        retry.attempts = ever_connected ? 1 : 5;
        retry.base_delay_ms = 200;
        const bool got = pgss::util::net::httpGetRetry(
            host, static_cast<std::uint16_t>(port), "/status", &resp,
            retry, &err);
        if (!got || resp.status != 200) {
            if (once || !ever_connected) {
                std::cerr << "pgss_top: no /status from " << host
                          << ":" << port << " ("
                          << (got ? "HTTP " + std::to_string(
                                                  resp.status)
                                  : err)
                          << ")\n"
                          << "is the run serving? start it with "
                             "--serve=" << port << " or "
                          << "PGSS_SERVE_PORT=" << port << "\n";
                return 1;
            }
            // We were watching a run and the port went away: the
            // process finished (finalize() stops the server).
            std::printf("\nrun finished (%s:%d gone)\n", host.c_str(),
                        port);
            return 0;
        }
        ever_connected = true;

        JsonValue doc;
        if (!pgss::obs::parseJson(resp.body, doc, &err)) {
            std::cerr << "pgss_top: bad /status JSON: " << err
                      << "\n";
            return 1;
        }
        render(doc, !once);
        if (once)
            return 0;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(interval));
    }
}

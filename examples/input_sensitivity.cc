/**
 * @file
 * Input sensitivity: the paper's Section-2.1 critique of offline
 * SimPoint is that "BBV data collection and clustering analysis must
 * be repeated for each version of a program as well as each input
 * variation". This example makes that concrete:
 *
 *   1. run offline SimPoint on input 0 of a workload — accurate;
 *   2. naively reuse input 0's simulation points (interval indices
 *      and weights) on input 1 — the phase structure has shifted and
 *      the estimate degrades;
 *   3. run PGSS on both inputs — its online phase tracking needs no
 *      per-input analysis and stays accurate.
 *
 * Usage: input_sensitivity [workload] [scale]
 *   defaults: 164.gzip 0.1
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "analysis/interval_profile.hh"
#include "core/pgss_controller.hh"
#include "obs/report.hh"
#include "sampling/simpoint_sampler.hh"
#include "workload/suite.hh"

int
main(int argc, char **argv)
{
    using namespace pgss;
    obs::initFromCli(argc, argv, "input_sensitivity");

    const std::string name = argc > 1 ? argv[1] : "164.gzip";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;
    constexpr std::uint64_t interval = 1'000'000;
    constexpr std::uint32_t clusters = 10;

    // Build both inputs and their ground truths.
    const workload::BuiltWorkload in0 =
        workload::buildWorkload(name, scale, 0);
    const workload::BuiltWorkload in1 =
        workload::buildWorkload(name, scale, 1);
    const analysis::IntervalProfile prof0 =
        analysis::buildIntervalProfile(in0.program);
    const analysis::IntervalProfile prof1 =
        analysis::buildIntervalProfile(in1.program);
    std::printf("%s: input 0 true IPC %.3f | input 1 true IPC %.3f\n",
                name.c_str(), prof0.trueIpc(), prof1.trueIpc());

    auto err = [](double est, double truth) {
        return 100.0 * std::abs(est - truth) / truth;
    };

    // 1. SimPoint analysed on, and applied to, input 0.
    sampling::SimPointConfig cfg;
    cfg.interval_ops = interval;
    cfg.clusters = clusters;
    const sampling::SimPointRun sp0 =
        sampling::runSimPoint(in0.program, {}, cfg, prof0);
    std::printf("\nSimPoint analysed on input 0, applied to input 0: "
                "error %.2f%%\n",
                err(sp0.result.est_ipc, prof0.trueIpc()));

    // 2. Naive reuse: the same simulation points (positions and
    //    weights) priced on input 1's execution.
    const std::size_t factor = interval / prof1.intervalOps();
    const std::size_t avail = prof1.intervals() / factor;
    double reused_cpi = 0.0;
    double reused_weight = 0.0;
    for (std::size_t c = 0; c < sp0.selection.rep_intervals.size();
         ++c) {
        std::size_t rep = sp0.selection.rep_intervals[c];
        if (rep >= avail)
            rep = avail - 1; // input 1 is shorter here
        reused_cpi += sp0.selection.weights[c] *
                      prof1.windowCpi(rep * factor, factor);
        reused_weight += sp0.selection.weights[c];
    }
    reused_cpi /= reused_weight;
    std::printf("input 0's points naively reused on input 1:        "
                "error %.2f%%\n",
                err(1.0 / reused_cpi, prof1.trueIpc()));

    // 3. Re-analysing input 1 from scratch (what SimPoint requires).
    const sampling::SimPointRun sp1 =
        sampling::runSimPoint(in1.program, {}, cfg, prof1);
    std::printf("SimPoint re-analysed on input 1 (fresh BBV pass + "
                "clustering): error %.2f%%\n",
                err(sp1.result.est_ipc, prof1.trueIpc()));

    // 4. PGSS needs no offline analysis on either input.
    for (int input = 0; input < 2; ++input) {
        const workload::BuiltWorkload &b = input == 0 ? in0 : in1;
        const analysis::IntervalProfile &p =
            input == 0 ? prof0 : prof1;
        core::PgssConfig pgss_cfg;
        pgss_cfg.bbv_period = 1'000'000;
        sim::SimulationEngine engine(b.program);
        const core::PgssResult r =
            core::PgssController(pgss_cfg).run(engine);
        std::printf("PGSS, online, input %d:                         "
                    "    error %.2f%% (%llu phases found at run "
                    "time)\n",
                    input, err(r.est_ipc, p.trueIpc()),
                    static_cast<unsigned long long>(r.n_phases));
    }

    std::printf("\nthe offline analysis is input-specific; online "
                "phase tracking is not —\nthe paper's motivation for "
                "run-time BBV tracking (Section 2.1).\n");
    obs::finalize();
    return 0;
}

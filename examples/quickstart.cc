/**
 * @file
 * Quickstart: build a synthetic workload, run PGSS-Sim on it, and
 * compare the estimate against a full detailed simulation. This is
 * the smallest complete use of the library:
 *
 *   1. workload::buildWorkload() -> a runnable program
 *   2. analysis::buildIntervalProfile() -> ground truth (optional;
 *      only needed to score the estimate)
 *   3. core::PgssController::run() over a sim::SimulationEngine
 *
 * Usage: quickstart [workload] [scale]
 *   workload: suite name (default 164.gzip), e.g. "181.mcf" or "mcf"
 *   scale: dynamic-length multiplier (default 0.1 for a fast demo)
 */

#include <cstdio>
#include <cstdlib>

#include "analysis/interval_profile.hh"
#include "core/pgss_controller.hh"
#include "obs/report.hh"
#include "obs/stats.hh"
#include "sim/engine.hh"
#include "workload/suite.hh"

int
main(int argc, char **argv)
{
    using namespace pgss;

    // --stats-json=<path> / --trace-out=<path> are stripped here so
    // the positional arguments below keep working.
    obs::initFromCli(argc, argv, "quickstart");

    const std::string name = argc > 1 ? argv[1] : "164.gzip";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;

    // 1. Build the workload: a real program for the simulated RISC
    //    machine, with phase structure scripted per DESIGN.md.
    const workload::BuiltWorkload built =
        workload::buildWorkload(name, scale);
    std::printf("workload %s: %zu static instructions, ~%.1fM "
                "dynamic ops, %.1f MiB data\n",
                built.program.name.c_str(), built.program.size(),
                built.estimated_ops / 1e6,
                built.program.data_bytes / 1048576.0);

    // 2. Ground truth: a full detailed simulation (this is the slow
    //    thing sampled simulation exists to avoid).
    const analysis::IntervalProfile profile =
        analysis::buildIntervalProfile(built.program);
    std::printf("ground truth: %.3f IPC over %llu cycles\n",
                profile.trueIpc(),
                static_cast<unsigned long long>(
                    profile.totalCycles()));

    // 3. PGSS-Sim with the paper's parameters: 100k-op BBV periods,
    //    0.05*pi threshold, 3k+1k detailed sample windows.
    core::PgssConfig config;
    sim::SimulationEngine engine(built.program);
    core::PgssController controller(config);
    engine.registerStats(obs::registry().root());
    controller.registerStats(obs::registry().root());
    obs::setReportMeta("workload", built.program.name);
    obs::setReportMeta("workload_scale", scale);
    const core::PgssResult result = controller.run(engine);

    std::printf("\nPGSS-Sim estimate: %.3f IPC (error %.2f%%)\n",
                result.est_ipc,
                100.0 * std::abs(result.est_ipc - profile.trueIpc()) /
                    profile.trueIpc());
    std::printf("  phases discovered: %llu (%llu transitions)\n",
                static_cast<unsigned long long>(result.n_phases),
                static_cast<unsigned long long>(
                    result.n_phase_changes));
    std::printf("  detailed simulation: %llu ops in %llu samples "
                "(%.3f%% of the program)\n",
                static_cast<unsigned long long>(result.detailed_ops),
                static_cast<unsigned long long>(result.n_samples),
                100.0 * static_cast<double>(result.detailed_ops) /
                    static_cast<double>(result.total_ops));

    std::printf("\nper-phase profile:\n");
    std::printf("  %5s %10s %9s %10s %8s\n", "phase", "periods",
                "samples", "mean CPI", "CoV");
    for (const core::PhaseSummary &p : result.phases) {
        std::printf("  %5u %10llu %9llu %10.3f %7.1f%%\n", p.id,
                    static_cast<unsigned long long>(p.member_periods),
                    static_cast<unsigned long long>(p.samples),
                    p.mean_cpi, 100.0 * p.cpi_cov);
    }
    obs::finalize();
    return 0;
}

/**
 * @file
 * Technique shootout: run every sampling technique in the library on
 * one workload and print accuracy versus detailed-simulation cost —
 * a one-workload miniature of the paper's Figure 12.
 *
 * Usage: technique_shootout [workload] [scale]
 *   defaults: 183.equake 0.1
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "analysis/interval_profile.hh"
#include "core/pgss_controller.hh"
#include "obs/report.hh"
#include "sampling/online_simpoint.hh"
#include "sampling/simpoint_sampler.hh"
#include "sampling/smarts.hh"
#include "sampling/turbosmarts.hh"
#include "util/table.hh"
#include "workload/suite.hh"

int
main(int argc, char **argv)
{
    using namespace pgss;
    obs::initFromCli(argc, argv, "technique_shootout");

    const std::string name = argc > 1 ? argv[1] : "183.equake";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;

    const workload::BuiltWorkload built =
        workload::buildWorkload(name, scale);
    const analysis::IntervalProfile profile =
        analysis::buildIntervalProfile(built.program);
    const double true_ipc = profile.trueIpc();
    std::printf("%s: true IPC %.3f over %.1fM ops\n\n",
                built.program.name.c_str(), true_ipc,
                profile.totalOps() / 1e6);

    util::Table t;
    t.setHeader({"technique", "est IPC", "error", "samples",
                 "detailed ops", "share of program"});
    auto add = [&](const std::string &tech, double est_ipc,
                   std::uint64_t samples, std::uint64_t detailed) {
        t.addRow({tech, util::Table::fmt(est_ipc, 4),
                  util::Table::fmtPercent(
                      std::abs(est_ipc - true_ipc) / true_ipc, 2),
                  std::to_string(samples),
                  util::Table::fmtCount(detailed),
                  util::Table::fmtPercent(
                      static_cast<double>(detailed) /
                          static_cast<double>(profile.totalOps()),
                      3)});
    };

    // SMARTS and TurboSMARTS.
    sim::SimulationEngine smarts_engine(built.program);
    const sampling::SmartsRun smarts =
        sampling::runSmarts(smarts_engine);
    add("SMARTS", smarts.result.est_ipc, smarts.result.n_samples,
        smarts.result.detailed_ops);
    const sampling::SamplerResult turbo =
        sampling::runTurboSmarts(smarts.sample_cpis);
    add("TurboSMARTS", turbo.est_ipc, turbo.n_samples,
        turbo.detailed_ops);

    // Offline SimPoint (10 clusters of 1M ops).
    sampling::SimPointConfig sp_cfg;
    sp_cfg.interval_ops = 1'000'000;
    sp_cfg.clusters = 10;
    const sampling::SimPointRun sp =
        sampling::runSimPoint(built.program, {}, sp_cfg, profile);
    add("SimPoint(10x1M)", sp.result.est_ipc, sp.result.n_samples,
        sp.result.detailed_ops);

    // Online SimPoint (1M, 0.1 pi, perfect predictor).
    sampling::OnlineSimPointConfig ol_cfg;
    ol_cfg.interval_ops = 1'000'000;
    ol_cfg.threshold = 0.1 * M_PI;
    const sampling::SamplerResult ol =
        sampling::runOnlineSimPoint(profile, ol_cfg);
    add("OnlineSP(1M/.1)", ol.est_ipc, ol.n_samples,
        ol.detailed_ops);

    // PGSS at the paper's default and best-overall configurations.
    for (const auto &[label, period] :
         {std::pair<const char *, std::uint64_t>{"PGSS(100k/.05)",
                                                 100'000},
          std::pair<const char *, std::uint64_t>{"PGSS(1M/.05)",
                                                 1'000'000}}) {
        core::PgssConfig cfg;
        cfg.bbv_period = period;
        sim::SimulationEngine engine(built.program);
        const core::PgssResult r =
            core::PgssController(cfg).run(engine);
        add(label, r.est_ipc, r.n_samples, r.detailed_ops);
    }

    t.print(std::cout);
    std::printf("\nSMARTS/SimPoint should be the most accurate; "
                "PGSS should be close while\nspending the least "
                "detailed simulation.\n");
    obs::finalize();
    return 0;
}

/**
 * @file
 * Phase explorer: visualise a workload's phase behaviour the way the
 * PGSS hardware would see it. Builds a ground-truth profile, runs
 * the online phase classifier over the BBV sequence at a chosen
 * threshold, and prints a timeline (one glyph per interval) plus a
 * per-phase summary.
 *
 * Usage: phase_explorer [workload] [threshold/pi] [scale]
 *   defaults: 179.art 0.05 0.1 — art's fine-grained oscillation and
 *   scan phases make a good show.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "analysis/phase_sequence.hh"
#include "obs/report.hh"
#include "stats/running_stats.hh"
#include "workload/suite.hh"

int
main(int argc, char **argv)
{
    using namespace pgss;
    obs::initFromCli(argc, argv, "phase_explorer");

    const std::string name = argc > 1 ? argv[1] : "179.art";
    const double threshold =
        (argc > 2 ? std::atof(argv[2]) : 0.05) * M_PI;
    const double scale = argc > 3 ? std::atof(argv[3]) : 0.1;

    const workload::BuiltWorkload built =
        workload::buildWorkload(name, scale);
    const analysis::IntervalProfile profile =
        analysis::buildIntervalProfile(built.program);
    const analysis::PhaseSequence seq =
        analysis::classifyProfile(profile, threshold);

    std::printf("%s at threshold %.3f pi: %u phases, %llu "
                "transitions over %zu intervals of %llu ops\n\n",
                built.program.name.c_str(), threshold / M_PI,
                seq.n_phases,
                static_cast<unsigned long long>(seq.n_changes),
                profile.intervals(),
                static_cast<unsigned long long>(
                    profile.intervalOps()));

    // Timeline: 0-9 then a-z then '#' for phase ids.
    auto glyph = [](std::uint32_t phase) {
        if (phase < 10)
            return static_cast<char>('0' + phase);
        if (phase < 36)
            return static_cast<char>('a' + phase - 10);
        return '#';
    };
    std::printf("timeline (each glyph = one %llu-op interval):\n",
                static_cast<unsigned long long>(
                    profile.intervalOps()));
    for (std::size_t i = 0; i < seq.assignment.size(); ++i) {
        if (i % 80 == 0)
            std::printf("\n%8.1fM  ",
                        static_cast<double>(i) *
                            profile.intervalOps() / 1e6);
        std::putchar(glyph(seq.assignment[i]));
    }
    std::printf("\n\nper-phase summary:\n");
    std::printf("  %5s %10s %10s %10s %10s\n", "phase", "intervals",
                "share", "mean IPC", "IPC sigma");

    std::vector<stats::RunningStats> per_phase(seq.n_phases);
    for (std::size_t i = 0; i < profile.intervals(); ++i)
        per_phase[seq.assignment[i]].add(profile.intervalIpc(i));
    for (std::uint32_t p = 0; p < seq.n_phases; ++p) {
        std::printf("  %5u %10llu %9.1f%% %10.3f %10.4f\n", p,
                    static_cast<unsigned long long>(
                        seq.occupancy[p]),
                    100.0 * static_cast<double>(seq.occupancy[p]) /
                        static_cast<double>(profile.intervals()),
                    per_phase[p].mean(), per_phase[p].stddev());
    }

    std::printf("\noverall: true IPC %.3f, interval sigma %.4f\n",
                profile.trueIpc(), profile.ipcStats().stddev());
    obs::finalize();
    return 0;
}

/**
 * @file
 * Livepoint-style checkpoint acceleration (the paper's Section-7
 * future-work item): record a checkpoint library for a workload,
 * then measure detailed sample windows in random order — TurboSMARTS
 * style — comparing the functional-warming cost against reaching the
 * same positions by fast-forwarding from the start.
 *
 * Usage: livepoint_seek [workload] [scale] [stride]
 *   defaults: 164.gzip 0.1 1000000
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/report.hh"
#include "sampling/checkpointed.hh"
#include "sim/checkpoint_library.hh"
#include "util/random.hh"
#include "workload/suite.hh"

int
main(int argc, char **argv)
{
    using namespace pgss;
    obs::initFromCli(argc, argv, "livepoint_seek");

    const std::string name = argc > 1 ? argv[1] : "164.gzip";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;
    const std::uint64_t stride =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1'000'000;

    const workload::BuiltWorkload built =
        workload::buildWorkload(name, scale);

    // Record the library (one functional-warming pass).
    sim::CheckpointLibrary library("pgss_checkpoint_library");
    const std::size_t count =
        library.record(built.program, {}, stride);
    std::printf("recorded %zu checkpoints at a %llu-op stride for "
                "%s\n",
                count, static_cast<unsigned long long>(stride),
                built.program.name.c_str());

    // Sample positions: every ~1M ops, processed in random order (as
    // TurboSMARTS processes its units).
    sim::SimulationEngine probe(built.program);
    probe.runToCompletion(sim::SimMode::FunctionalFast);
    const std::uint64_t total = probe.totalOps();
    // Offset off the checkpoint grid so every visit needs a little
    // warming (the realistic case).
    std::vector<std::uint64_t> positions;
    for (std::uint64_t at = 1'137'000; at + 10'000 < total;
         at += 1'000'000)
        positions.push_back(at);
    util::Rng rng(42);
    rng.shuffle(positions);

    const sampling::CheckpointedMeasurement m =
        sampling::measureWindowsViaLibrary(built.program, {}, library,
                                           positions);

    // Cost of reaching the same positions without checkpoints: each
    // random-order visit fast-forwards from the program start.
    std::uint64_t naive_ff = 0;
    for (std::uint64_t p : positions)
        naive_ff += p;

    double mean_cpi = 0.0;
    for (double c : m.cpis)
        mean_cpi += c;
    mean_cpi /= static_cast<double>(m.cpis.size());

    std::printf("\nmeasured %zu windows in random order\n",
                m.cpis.size());
    std::printf("  estimate: %.3f IPC\n", 1.0 / mean_cpi);
    std::printf("  checkpoint restores:        %llu\n",
                static_cast<unsigned long long>(m.restores));
    std::printf("  functional warming used:    %llu ops\n",
                static_cast<unsigned long long>(m.warmed_ops));
    std::printf("  without the library:        %llu ops\n",
                static_cast<unsigned long long>(naive_ff));
    if (m.warmed_ops > 0)
        std::printf("  fast-forward reduction:     %.0fx\n",
                    static_cast<double>(naive_ff) /
                        static_cast<double>(m.warmed_ops));
    std::printf("\nthis is the mechanism the paper's future-work "
                "section borrows from\nTurboSMARTS live-points: "
                "once positions are checkpointed, samples can\nbe "
                "(re)measured in any order at stride-bounded cost.\n");
    obs::finalize();
    return 0;
}

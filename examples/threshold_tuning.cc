/**
 * @file
 * Threshold tuning: how the BBV angle threshold changes PGSS-Sim's
 * behaviour on one workload, and what the adaptive-threshold
 * extension (the paper's future-work item) settles on.
 *
 * Usage: threshold_tuning [workload] [scale]
 *   defaults: 300.twolf 0.1 — the paper's own threshold case study.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "analysis/interval_profile.hh"
#include "core/pgss_controller.hh"
#include "obs/report.hh"
#include "util/table.hh"
#include "workload/suite.hh"

int
main(int argc, char **argv)
{
    using namespace pgss;
    obs::initFromCli(argc, argv, "threshold_tuning");

    const std::string name = argc > 1 ? argv[1] : "300.twolf";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;

    const workload::BuiltWorkload built =
        workload::buildWorkload(name, scale);
    const analysis::IntervalProfile profile =
        analysis::buildIntervalProfile(built.program);
    const double true_ipc = profile.trueIpc();
    std::printf("%s: true IPC %.3f\n\n", built.program.name.c_str(),
                true_ipc);

    util::Table t;
    t.setHeader({"threshold/pi", "phases", "changes", "samples",
                 "detailed ops", "error"});
    for (double th : {0.01, 0.025, 0.05, 0.10, 0.15, 0.25, 0.40}) {
        core::PgssConfig cfg;
        cfg.threshold = th * M_PI;
        sim::SimulationEngine engine(built.program);
        const core::PgssResult r =
            core::PgssController(cfg).run(engine);
        t.addRow({util::Table::fmt(th, 3),
                  std::to_string(r.n_phases),
                  std::to_string(r.n_phase_changes),
                  std::to_string(r.n_samples),
                  util::Table::fmtCount(r.detailed_ops),
                  util::Table::fmtPercent(
                      std::abs(r.est_ipc - true_ipc) / true_ipc,
                      2)});
    }
    t.print(std::cout);

    // The adaptive extension: start badly mis-tuned in both
    // directions and let the runtime controller walk the threshold.
    std::printf("\nadaptive threshold (paper future work):\n");
    for (double start : {0.01, 0.25}) {
        core::PgssConfig cfg;
        cfg.threshold = start * M_PI;
        cfg.adaptive.enabled = true;
        sim::SimulationEngine engine(built.program);
        const core::PgssResult r =
            core::PgssController(cfg).run(engine);
        std::printf("  start %.3f pi -> final %.3f pi "
                    "(%u adjustments), error %.2f%%, %llu samples\n",
                    start, r.final_threshold / M_PI,
                    r.threshold_adjustments,
                    100.0 * std::abs(r.est_ipc - true_ipc) /
                        true_ipc,
                    static_cast<unsigned long long>(r.n_samples));
    }
    std::printf("\nlow thresholds mint many phases (false "
                "positives, extra samples); high\nthresholds merge "
                "real behaviour changes. The sweet spot is near "
                "0.05 pi,\nas in the paper.\n");
    obs::finalize();
    return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/fig07_bbv_ipc_distribution.dir/fig07_bbv_ipc_distribution.cc.o"
  "CMakeFiles/fig07_bbv_ipc_distribution.dir/fig07_bbv_ipc_distribution.cc.o.d"
  "fig07_bbv_ipc_distribution"
  "fig07_bbv_ipc_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_bbv_ipc_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig07_bbv_ipc_distribution.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig12_technique_comparison.dir/fig12_technique_comparison.cc.o"
  "CMakeFiles/fig12_technique_comparison.dir/fig12_technique_comparison.cc.o.d"
  "fig12_technique_comparison"
  "fig12_technique_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_technique_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

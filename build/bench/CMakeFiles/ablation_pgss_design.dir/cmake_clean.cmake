file(REMOVE_RECURSE
  "CMakeFiles/ablation_pgss_design.dir/ablation_pgss_design.cc.o"
  "CMakeFiles/ablation_pgss_design.dir/ablation_pgss_design.cc.o.d"
  "ablation_pgss_design"
  "ablation_pgss_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pgss_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_pgss_design.
# This may be replaced when dependencies are built.

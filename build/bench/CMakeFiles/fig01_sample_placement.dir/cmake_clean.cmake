file(REMOVE_RECURSE
  "CMakeFiles/fig01_sample_placement.dir/fig01_sample_placement.cc.o"
  "CMakeFiles/fig01_sample_placement.dir/fig01_sample_placement.cc.o.d"
  "fig01_sample_placement"
  "fig01_sample_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_sample_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

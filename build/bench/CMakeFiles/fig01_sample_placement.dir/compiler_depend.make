# Empty compiler generated dependencies file for fig01_sample_placement.
# This may be replaced when dependencies are built.

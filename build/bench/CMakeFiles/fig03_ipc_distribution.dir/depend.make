# Empty dependencies file for fig03_ipc_distribution.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig03_ipc_distribution.dir/fig03_ipc_distribution.cc.o"
  "CMakeFiles/fig03_ipc_distribution.dir/fig03_ipc_distribution.cc.o.d"
  "fig03_ipc_distribution"
  "fig03_ipc_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_ipc_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpgss_bench_support.a"
)

# Empty compiler generated dependencies file for pgss_bench_support.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pgss_bench_support.dir/support.cc.o"
  "CMakeFiles/pgss_bench_support.dir/support.cc.o.d"
  "libpgss_bench_support.a"
  "libpgss_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgss_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

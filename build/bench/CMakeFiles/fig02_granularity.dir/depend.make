# Empty dependencies file for fig02_granularity.
# This may be replaced when dependencies are built.

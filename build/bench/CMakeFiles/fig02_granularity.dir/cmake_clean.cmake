file(REMOVE_RECURSE
  "CMakeFiles/fig02_granularity.dir/fig02_granularity.cc.o"
  "CMakeFiles/fig02_granularity.dir/fig02_granularity.cc.o.d"
  "fig02_granularity"
  "fig02_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

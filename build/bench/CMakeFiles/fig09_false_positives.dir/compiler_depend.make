# Empty compiler generated dependencies file for fig09_false_positives.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig09_false_positives.dir/fig09_false_positives.cc.o"
  "CMakeFiles/fig09_false_positives.dir/fig09_false_positives.cc.o.d"
  "fig09_false_positives"
  "fig09_false_positives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_false_positives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig10_threshold_effects.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig10_threshold_effects.dir/fig10_threshold_effects.cc.o"
  "CMakeFiles/fig10_threshold_effects.dir/fig10_threshold_effects.cc.o.d"
  "fig10_threshold_effects"
  "fig10_threshold_effects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_threshold_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

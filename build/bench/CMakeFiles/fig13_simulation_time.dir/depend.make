# Empty dependencies file for fig13_simulation_time.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig13_simulation_time.dir/fig13_simulation_time.cc.o"
  "CMakeFiles/fig13_simulation_time.dir/fig13_simulation_time.cc.o.d"
  "fig13_simulation_time"
  "fig13_simulation_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_simulation_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

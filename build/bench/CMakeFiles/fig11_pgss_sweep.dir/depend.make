# Empty dependencies file for fig11_pgss_sweep.
# This may be replaced when dependencies are built.

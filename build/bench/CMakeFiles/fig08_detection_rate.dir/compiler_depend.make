# Empty compiler generated dependencies file for fig08_detection_rate.
# This may be replaced when dependencies are built.

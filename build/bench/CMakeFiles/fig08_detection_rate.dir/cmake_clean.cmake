file(REMOVE_RECURSE
  "CMakeFiles/fig08_detection_rate.dir/fig08_detection_rate.cc.o"
  "CMakeFiles/fig08_detection_rate.dir/fig08_detection_rate.cc.o.d"
  "fig08_detection_rate"
  "fig08_detection_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_detection_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

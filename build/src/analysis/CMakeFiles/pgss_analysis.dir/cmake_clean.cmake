file(REMOVE_RECURSE
  "CMakeFiles/pgss_analysis.dir/interval_profile.cc.o"
  "CMakeFiles/pgss_analysis.dir/interval_profile.cc.o.d"
  "CMakeFiles/pgss_analysis.dir/phase_sequence.cc.o"
  "CMakeFiles/pgss_analysis.dir/phase_sequence.cc.o.d"
  "CMakeFiles/pgss_analysis.dir/profile_cache.cc.o"
  "CMakeFiles/pgss_analysis.dir/profile_cache.cc.o.d"
  "CMakeFiles/pgss_analysis.dir/threshold_analysis.cc.o"
  "CMakeFiles/pgss_analysis.dir/threshold_analysis.cc.o.d"
  "libpgss_analysis.a"
  "libpgss_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgss_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpgss_analysis.a"
)

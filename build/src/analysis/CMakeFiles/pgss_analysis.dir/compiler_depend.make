# Empty compiler generated dependencies file for pgss_analysis.
# This may be replaced when dependencies are built.

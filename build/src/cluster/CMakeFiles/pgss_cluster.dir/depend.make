# Empty dependencies file for pgss_cluster.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpgss_cluster.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/kmeans.cc" "src/cluster/CMakeFiles/pgss_cluster.dir/kmeans.cc.o" "gcc" "src/cluster/CMakeFiles/pgss_cluster.dir/kmeans.cc.o.d"
  "/root/repo/src/cluster/random_projection.cc" "src/cluster/CMakeFiles/pgss_cluster.dir/random_projection.cc.o" "gcc" "src/cluster/CMakeFiles/pgss_cluster.dir/random_projection.cc.o.d"
  "/root/repo/src/cluster/simpoint.cc" "src/cluster/CMakeFiles/pgss_cluster.dir/simpoint.cc.o" "gcc" "src/cluster/CMakeFiles/pgss_cluster.dir/simpoint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bbv/CMakeFiles/pgss_bbv.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

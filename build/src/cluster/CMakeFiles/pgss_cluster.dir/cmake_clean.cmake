file(REMOVE_RECURSE
  "CMakeFiles/pgss_cluster.dir/kmeans.cc.o"
  "CMakeFiles/pgss_cluster.dir/kmeans.cc.o.d"
  "CMakeFiles/pgss_cluster.dir/random_projection.cc.o"
  "CMakeFiles/pgss_cluster.dir/random_projection.cc.o.d"
  "CMakeFiles/pgss_cluster.dir/simpoint.cc.o"
  "CMakeFiles/pgss_cluster.dir/simpoint.cc.o.d"
  "libpgss_cluster.a"
  "libpgss_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgss_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

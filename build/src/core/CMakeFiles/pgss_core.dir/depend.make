# Empty dependencies file for pgss_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpgss_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pgss_core.dir/adaptive_threshold.cc.o"
  "CMakeFiles/pgss_core.dir/adaptive_threshold.cc.o.d"
  "CMakeFiles/pgss_core.dir/pgss_controller.cc.o"
  "CMakeFiles/pgss_core.dir/pgss_controller.cc.o.d"
  "CMakeFiles/pgss_core.dir/phase.cc.o"
  "CMakeFiles/pgss_core.dir/phase.cc.o.d"
  "CMakeFiles/pgss_core.dir/phase_table.cc.o"
  "CMakeFiles/pgss_core.dir/phase_table.cc.o.d"
  "libpgss_core.a"
  "libpgss_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgss_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

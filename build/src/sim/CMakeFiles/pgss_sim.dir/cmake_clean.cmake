file(REMOVE_RECURSE
  "CMakeFiles/pgss_sim.dir/checkpoint.cc.o"
  "CMakeFiles/pgss_sim.dir/checkpoint.cc.o.d"
  "CMakeFiles/pgss_sim.dir/checkpoint_library.cc.o"
  "CMakeFiles/pgss_sim.dir/checkpoint_library.cc.o.d"
  "CMakeFiles/pgss_sim.dir/engine.cc.o"
  "CMakeFiles/pgss_sim.dir/engine.cc.o.d"
  "libpgss_sim.a"
  "libpgss_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgss_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/checkpoint.cc" "src/sim/CMakeFiles/pgss_sim.dir/checkpoint.cc.o" "gcc" "src/sim/CMakeFiles/pgss_sim.dir/checkpoint.cc.o.d"
  "/root/repo/src/sim/checkpoint_library.cc" "src/sim/CMakeFiles/pgss_sim.dir/checkpoint_library.cc.o" "gcc" "src/sim/CMakeFiles/pgss_sim.dir/checkpoint_library.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/sim/CMakeFiles/pgss_sim.dir/engine.cc.o" "gcc" "src/sim/CMakeFiles/pgss_sim.dir/engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/pgss_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/pgss_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/bbv/CMakeFiles/pgss_bbv.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pgss_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pgss_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/pgss_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libpgss_sim.a"
)

# Empty compiler generated dependencies file for pgss_sim.
# This may be replaced when dependencies are built.

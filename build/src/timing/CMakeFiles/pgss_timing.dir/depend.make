# Empty dependencies file for pgss_timing.
# This may be replaced when dependencies are built.

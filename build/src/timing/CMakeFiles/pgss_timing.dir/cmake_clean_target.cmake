file(REMOVE_RECURSE
  "libpgss_timing.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pgss_timing.dir/branch_unit.cc.o"
  "CMakeFiles/pgss_timing.dir/branch_unit.cc.o.d"
  "CMakeFiles/pgss_timing.dir/in_order_pipeline.cc.o"
  "CMakeFiles/pgss_timing.dir/in_order_pipeline.cc.o.d"
  "libpgss_timing.a"
  "libpgss_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgss_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

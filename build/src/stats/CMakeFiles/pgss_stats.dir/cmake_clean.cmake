file(REMOVE_RECURSE
  "CMakeFiles/pgss_stats.dir/confidence.cc.o"
  "CMakeFiles/pgss_stats.dir/confidence.cc.o.d"
  "CMakeFiles/pgss_stats.dir/histogram.cc.o"
  "CMakeFiles/pgss_stats.dir/histogram.cc.o.d"
  "CMakeFiles/pgss_stats.dir/running_stats.cc.o"
  "CMakeFiles/pgss_stats.dir/running_stats.cc.o.d"
  "CMakeFiles/pgss_stats.dir/stratified.cc.o"
  "CMakeFiles/pgss_stats.dir/stratified.cc.o.d"
  "libpgss_stats.a"
  "libpgss_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgss_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

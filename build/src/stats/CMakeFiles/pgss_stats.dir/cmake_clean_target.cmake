file(REMOVE_RECURSE
  "libpgss_stats.a"
)

# Empty compiler generated dependencies file for pgss_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pgss_cpu.dir/functional_core.cc.o"
  "CMakeFiles/pgss_cpu.dir/functional_core.cc.o.d"
  "libpgss_cpu.a"
  "libpgss_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgss_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpgss_cpu.a"
)

# Empty dependencies file for pgss_cpu.
# This may be replaced when dependencies are built.

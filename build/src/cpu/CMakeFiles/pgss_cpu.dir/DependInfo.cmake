
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/functional_core.cc" "src/cpu/CMakeFiles/pgss_cpu.dir/functional_core.cc.o" "gcc" "src/cpu/CMakeFiles/pgss_cpu.dir/functional_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/pgss_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pgss_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

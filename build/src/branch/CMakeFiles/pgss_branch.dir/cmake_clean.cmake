file(REMOVE_RECURSE
  "CMakeFiles/pgss_branch.dir/btb.cc.o"
  "CMakeFiles/pgss_branch.dir/btb.cc.o.d"
  "CMakeFiles/pgss_branch.dir/predictor.cc.o"
  "CMakeFiles/pgss_branch.dir/predictor.cc.o.d"
  "libpgss_branch.a"
  "libpgss_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgss_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for pgss_branch.
# This may be replaced when dependencies are built.

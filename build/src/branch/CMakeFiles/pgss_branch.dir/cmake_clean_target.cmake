file(REMOVE_RECURSE
  "libpgss_branch.a"
)

file(REMOVE_RECURSE
  "libpgss_util.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pgss_util.dir/csv.cc.o"
  "CMakeFiles/pgss_util.dir/csv.cc.o.d"
  "CMakeFiles/pgss_util.dir/env.cc.o"
  "CMakeFiles/pgss_util.dir/env.cc.o.d"
  "CMakeFiles/pgss_util.dir/logging.cc.o"
  "CMakeFiles/pgss_util.dir/logging.cc.o.d"
  "CMakeFiles/pgss_util.dir/random.cc.o"
  "CMakeFiles/pgss_util.dir/random.cc.o.d"
  "CMakeFiles/pgss_util.dir/serialize.cc.o"
  "CMakeFiles/pgss_util.dir/serialize.cc.o.d"
  "CMakeFiles/pgss_util.dir/table.cc.o"
  "CMakeFiles/pgss_util.dir/table.cc.o.d"
  "libpgss_util.a"
  "libpgss_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgss_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

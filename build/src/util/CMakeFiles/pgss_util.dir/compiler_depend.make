# Empty compiler generated dependencies file for pgss_util.
# This may be replaced when dependencies are built.

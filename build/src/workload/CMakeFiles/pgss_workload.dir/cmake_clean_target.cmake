file(REMOVE_RECURSE
  "libpgss_workload.a"
)

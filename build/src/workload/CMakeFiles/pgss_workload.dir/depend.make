# Empty dependencies file for pgss_workload.
# This may be replaced when dependencies are built.

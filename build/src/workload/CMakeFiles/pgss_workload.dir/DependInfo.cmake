
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/kernels.cc" "src/workload/CMakeFiles/pgss_workload.dir/kernels.cc.o" "gcc" "src/workload/CMakeFiles/pgss_workload.dir/kernels.cc.o.d"
  "/root/repo/src/workload/program_builder.cc" "src/workload/CMakeFiles/pgss_workload.dir/program_builder.cc.o" "gcc" "src/workload/CMakeFiles/pgss_workload.dir/program_builder.cc.o.d"
  "/root/repo/src/workload/suite.cc" "src/workload/CMakeFiles/pgss_workload.dir/suite.cc.o" "gcc" "src/workload/CMakeFiles/pgss_workload.dir/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/pgss_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/pgss_workload.dir/kernels.cc.o"
  "CMakeFiles/pgss_workload.dir/kernels.cc.o.d"
  "CMakeFiles/pgss_workload.dir/program_builder.cc.o"
  "CMakeFiles/pgss_workload.dir/program_builder.cc.o.d"
  "CMakeFiles/pgss_workload.dir/suite.cc.o"
  "CMakeFiles/pgss_workload.dir/suite.cc.o.d"
  "libpgss_workload.a"
  "libpgss_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgss_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

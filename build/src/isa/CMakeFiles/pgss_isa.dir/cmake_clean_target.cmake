file(REMOVE_RECURSE
  "libpgss_isa.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pgss_isa.dir/instruction.cc.o"
  "CMakeFiles/pgss_isa.dir/instruction.cc.o.d"
  "CMakeFiles/pgss_isa.dir/opcodes.cc.o"
  "CMakeFiles/pgss_isa.dir/opcodes.cc.o.d"
  "libpgss_isa.a"
  "libpgss_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgss_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pgss_isa.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("isa")
subdirs("mem")
subdirs("branch")
subdirs("cpu")
subdirs("timing")
subdirs("workload")
subdirs("sim")
subdirs("bbv")
subdirs("stats")
subdirs("cluster")
subdirs("core")
subdirs("analysis")
subdirs("sampling")

file(REMOVE_RECURSE
  "libpgss_mem.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pgss_mem.dir/cache.cc.o"
  "CMakeFiles/pgss_mem.dir/cache.cc.o.d"
  "CMakeFiles/pgss_mem.dir/hierarchy.cc.o"
  "CMakeFiles/pgss_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/pgss_mem.dir/main_memory.cc.o"
  "CMakeFiles/pgss_mem.dir/main_memory.cc.o.d"
  "libpgss_mem.a"
  "libpgss_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgss_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for pgss_mem.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pgss_sampling.dir/checkpointed.cc.o"
  "CMakeFiles/pgss_sampling.dir/checkpointed.cc.o.d"
  "CMakeFiles/pgss_sampling.dir/online_simpoint.cc.o"
  "CMakeFiles/pgss_sampling.dir/online_simpoint.cc.o.d"
  "CMakeFiles/pgss_sampling.dir/simpoint_sampler.cc.o"
  "CMakeFiles/pgss_sampling.dir/simpoint_sampler.cc.o.d"
  "CMakeFiles/pgss_sampling.dir/smarts.cc.o"
  "CMakeFiles/pgss_sampling.dir/smarts.cc.o.d"
  "CMakeFiles/pgss_sampling.dir/turbosmarts.cc.o"
  "CMakeFiles/pgss_sampling.dir/turbosmarts.cc.o.d"
  "libpgss_sampling.a"
  "libpgss_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgss_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpgss_sampling.a"
)

# Empty compiler generated dependencies file for pgss_sampling.
# This may be replaced when dependencies are built.

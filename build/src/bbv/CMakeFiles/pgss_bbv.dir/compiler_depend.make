# Empty compiler generated dependencies file for pgss_bbv.
# This may be replaced when dependencies are built.

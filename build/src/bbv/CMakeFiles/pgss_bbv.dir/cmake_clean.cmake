file(REMOVE_RECURSE
  "CMakeFiles/pgss_bbv.dir/bbv_math.cc.o"
  "CMakeFiles/pgss_bbv.dir/bbv_math.cc.o.d"
  "CMakeFiles/pgss_bbv.dir/full_bbv.cc.o"
  "CMakeFiles/pgss_bbv.dir/full_bbv.cc.o.d"
  "CMakeFiles/pgss_bbv.dir/hashed_bbv.cc.o"
  "CMakeFiles/pgss_bbv.dir/hashed_bbv.cc.o.d"
  "libpgss_bbv.a"
  "libpgss_bbv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgss_bbv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bbv/bbv_math.cc" "src/bbv/CMakeFiles/pgss_bbv.dir/bbv_math.cc.o" "gcc" "src/bbv/CMakeFiles/pgss_bbv.dir/bbv_math.cc.o.d"
  "/root/repo/src/bbv/full_bbv.cc" "src/bbv/CMakeFiles/pgss_bbv.dir/full_bbv.cc.o" "gcc" "src/bbv/CMakeFiles/pgss_bbv.dir/full_bbv.cc.o.d"
  "/root/repo/src/bbv/hashed_bbv.cc" "src/bbv/CMakeFiles/pgss_bbv.dir/hashed_bbv.cc.o" "gcc" "src/bbv/CMakeFiles/pgss_bbv.dir/hashed_bbv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pgss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libpgss_bbv.a"
)

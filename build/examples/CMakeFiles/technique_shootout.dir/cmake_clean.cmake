file(REMOVE_RECURSE
  "CMakeFiles/technique_shootout.dir/technique_shootout.cc.o"
  "CMakeFiles/technique_shootout.dir/technique_shootout.cc.o.d"
  "technique_shootout"
  "technique_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/technique_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

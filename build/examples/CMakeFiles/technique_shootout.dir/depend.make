# Empty dependencies file for technique_shootout.
# This may be replaced when dependencies are built.

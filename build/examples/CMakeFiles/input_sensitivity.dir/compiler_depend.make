# Empty compiler generated dependencies file for input_sensitivity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/input_sensitivity.dir/input_sensitivity.cc.o"
  "CMakeFiles/input_sensitivity.dir/input_sensitivity.cc.o.d"
  "input_sensitivity"
  "input_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/input_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/livepoint_seek.dir/livepoint_seek.cc.o"
  "CMakeFiles/livepoint_seek.dir/livepoint_seek.cc.o.d"
  "livepoint_seek"
  "livepoint_seek.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/livepoint_seek.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for livepoint_seek.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_sampling_simpoint.
# This may be replaced when dependencies are built.

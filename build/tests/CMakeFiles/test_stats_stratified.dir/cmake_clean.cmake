file(REMOVE_RECURSE
  "CMakeFiles/test_stats_stratified.dir/test_stats_stratified.cc.o"
  "CMakeFiles/test_stats_stratified.dir/test_stats_stratified.cc.o.d"
  "test_stats_stratified"
  "test_stats_stratified.pdb"
  "test_stats_stratified[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_stratified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

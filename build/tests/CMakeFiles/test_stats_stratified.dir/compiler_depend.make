# Empty compiler generated dependencies file for test_stats_stratified.
# This may be replaced when dependencies are built.

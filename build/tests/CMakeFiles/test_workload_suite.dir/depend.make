# Empty dependencies file for test_workload_suite.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_workload_suite.dir/test_workload_suite.cc.o"
  "CMakeFiles/test_workload_suite.dir/test_workload_suite.cc.o.d"
  "test_workload_suite"
  "test_workload_suite.pdb"
  "test_workload_suite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

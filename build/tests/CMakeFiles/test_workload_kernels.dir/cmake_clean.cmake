file(REMOVE_RECURSE
  "CMakeFiles/test_workload_kernels.dir/test_workload_kernels.cc.o"
  "CMakeFiles/test_workload_kernels.dir/test_workload_kernels.cc.o.d"
  "test_workload_kernels"
  "test_workload_kernels.pdb"
  "test_workload_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_workload_kernels.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_util_table_csv.cc" "tests/CMakeFiles/test_util_table_csv.dir/test_util_table_csv.cc.o" "gcc" "tests/CMakeFiles/test_util_table_csv.dir/test_util_table_csv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sampling/CMakeFiles/pgss_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pgss_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pgss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/pgss_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pgss_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pgss_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/pgss_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/pgss_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/pgss_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pgss_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bbv/CMakeFiles/pgss_bbv.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pgss_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pgss_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

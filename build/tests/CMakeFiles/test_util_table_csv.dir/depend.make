# Empty dependencies file for test_util_table_csv.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_workload_inputs.dir/test_workload_inputs.cc.o"
  "CMakeFiles/test_workload_inputs.dir/test_workload_inputs.cc.o.d"
  "test_workload_inputs"
  "test_workload_inputs.pdb"
  "test_workload_inputs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_workload_inputs.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_analysis_threshold.
# This may be replaced when dependencies are built.

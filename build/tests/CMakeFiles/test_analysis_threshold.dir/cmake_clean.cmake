file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_threshold.dir/test_analysis_threshold.cc.o"
  "CMakeFiles/test_analysis_threshold.dir/test_analysis_threshold.cc.o.d"
  "test_analysis_threshold"
  "test_analysis_threshold.pdb"
  "test_analysis_threshold[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

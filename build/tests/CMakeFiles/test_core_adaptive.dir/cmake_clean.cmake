file(REMOVE_RECURSE
  "CMakeFiles/test_core_adaptive.dir/test_core_adaptive.cc.o"
  "CMakeFiles/test_core_adaptive.dir/test_core_adaptive.cc.o.d"
  "test_core_adaptive"
  "test_core_adaptive.pdb"
  "test_core_adaptive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

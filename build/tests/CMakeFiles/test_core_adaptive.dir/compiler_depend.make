# Empty compiler generated dependencies file for test_core_adaptive.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_stats_running.
# This may be replaced when dependencies are built.

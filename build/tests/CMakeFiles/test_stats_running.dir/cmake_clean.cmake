file(REMOVE_RECURSE
  "CMakeFiles/test_stats_running.dir/test_stats_running.cc.o"
  "CMakeFiles/test_stats_running.dir/test_stats_running.cc.o.d"
  "test_stats_running"
  "test_stats_running.pdb"
  "test_stats_running[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_running.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

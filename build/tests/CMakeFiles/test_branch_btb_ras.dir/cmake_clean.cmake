file(REMOVE_RECURSE
  "CMakeFiles/test_branch_btb_ras.dir/test_branch_btb_ras.cc.o"
  "CMakeFiles/test_branch_btb_ras.dir/test_branch_btb_ras.cc.o.d"
  "test_branch_btb_ras"
  "test_branch_btb_ras.pdb"
  "test_branch_btb_ras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_branch_btb_ras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_branch_btb_ras.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_util_serialize.dir/test_util_serialize.cc.o"
  "CMakeFiles/test_util_serialize.dir/test_util_serialize.cc.o.d"
  "test_util_serialize"
  "test_util_serialize.pdb"
  "test_util_serialize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

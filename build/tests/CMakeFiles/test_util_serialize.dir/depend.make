# Empty dependencies file for test_util_serialize.
# This may be replaced when dependencies are built.

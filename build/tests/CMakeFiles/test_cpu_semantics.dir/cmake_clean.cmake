file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_semantics.dir/test_cpu_semantics.cc.o"
  "CMakeFiles/test_cpu_semantics.dir/test_cpu_semantics.cc.o.d"
  "test_cpu_semantics"
  "test_cpu_semantics.pdb"
  "test_cpu_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

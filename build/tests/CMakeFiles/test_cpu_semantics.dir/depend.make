# Empty dependencies file for test_cpu_semantics.
# This may be replaced when dependencies are built.

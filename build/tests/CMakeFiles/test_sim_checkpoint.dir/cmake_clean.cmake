file(REMOVE_RECURSE
  "CMakeFiles/test_sim_checkpoint.dir/test_sim_checkpoint.cc.o"
  "CMakeFiles/test_sim_checkpoint.dir/test_sim_checkpoint.cc.o.d"
  "test_sim_checkpoint"
  "test_sim_checkpoint.pdb"
  "test_sim_checkpoint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_sim_checkpoint.
# This may be replaced when dependencies are built.

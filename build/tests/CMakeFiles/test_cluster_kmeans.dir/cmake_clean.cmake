file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_kmeans.dir/test_cluster_kmeans.cc.o"
  "CMakeFiles/test_cluster_kmeans.dir/test_cluster_kmeans.cc.o.d"
  "test_cluster_kmeans"
  "test_cluster_kmeans.pdb"
  "test_cluster_kmeans[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

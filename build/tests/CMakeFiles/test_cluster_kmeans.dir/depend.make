# Empty dependencies file for test_cluster_kmeans.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_sampling_smarts.dir/test_sampling_smarts.cc.o"
  "CMakeFiles/test_sampling_smarts.dir/test_sampling_smarts.cc.o.d"
  "test_sampling_smarts"
  "test_sampling_smarts.pdb"
  "test_sampling_smarts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sampling_smarts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

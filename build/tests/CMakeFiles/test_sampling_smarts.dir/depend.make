# Empty dependencies file for test_sampling_smarts.
# This may be replaced when dependencies are built.

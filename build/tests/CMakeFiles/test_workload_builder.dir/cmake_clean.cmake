file(REMOVE_RECURSE
  "CMakeFiles/test_workload_builder.dir/test_workload_builder.cc.o"
  "CMakeFiles/test_workload_builder.dir/test_workload_builder.cc.o.d"
  "test_workload_builder"
  "test_workload_builder.pdb"
  "test_workload_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_profile.dir/test_analysis_profile.cc.o"
  "CMakeFiles/test_analysis_profile.dir/test_analysis_profile.cc.o.d"
  "test_analysis_profile"
  "test_analysis_profile.pdb"
  "test_analysis_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_cluster_projection.
# This may be replaced when dependencies are built.

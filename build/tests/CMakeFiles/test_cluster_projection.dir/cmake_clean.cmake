file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_projection.dir/test_cluster_projection.cc.o"
  "CMakeFiles/test_cluster_projection.dir/test_cluster_projection.cc.o.d"
  "test_cluster_projection"
  "test_cluster_projection.pdb"
  "test_cluster_projection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_core_pgss.
# This may be replaced when dependencies are built.

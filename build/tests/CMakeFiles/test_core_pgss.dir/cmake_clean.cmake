file(REMOVE_RECURSE
  "CMakeFiles/test_core_pgss.dir/test_core_pgss.cc.o"
  "CMakeFiles/test_core_pgss.dir/test_core_pgss.cc.o.d"
  "test_core_pgss"
  "test_core_pgss.pdb"
  "test_core_pgss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_pgss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_mem_memory.dir/test_mem_memory.cc.o"
  "CMakeFiles/test_mem_memory.dir/test_mem_memory.cc.o.d"
  "test_mem_memory"
  "test_mem_memory.pdb"
  "test_mem_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

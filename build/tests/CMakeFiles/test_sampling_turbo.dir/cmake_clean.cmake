file(REMOVE_RECURSE
  "CMakeFiles/test_sampling_turbo.dir/test_sampling_turbo.cc.o"
  "CMakeFiles/test_sampling_turbo.dir/test_sampling_turbo.cc.o.d"
  "test_sampling_turbo"
  "test_sampling_turbo.pdb"
  "test_sampling_turbo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sampling_turbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

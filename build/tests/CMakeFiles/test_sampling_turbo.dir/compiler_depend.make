# Empty compiler generated dependencies file for test_sampling_turbo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_stats_confidence.dir/test_stats_confidence.cc.o"
  "CMakeFiles/test_stats_confidence.dir/test_stats_confidence.cc.o.d"
  "test_stats_confidence"
  "test_stats_confidence.pdb"
  "test_stats_confidence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_stats_confidence.
# This may be replaced when dependencies are built.

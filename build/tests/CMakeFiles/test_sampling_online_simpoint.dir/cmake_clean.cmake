file(REMOVE_RECURSE
  "CMakeFiles/test_sampling_online_simpoint.dir/test_sampling_online_simpoint.cc.o"
  "CMakeFiles/test_sampling_online_simpoint.dir/test_sampling_online_simpoint.cc.o.d"
  "test_sampling_online_simpoint"
  "test_sampling_online_simpoint.pdb"
  "test_sampling_online_simpoint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sampling_online_simpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

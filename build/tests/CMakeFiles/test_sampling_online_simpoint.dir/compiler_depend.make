# Empty compiler generated dependencies file for test_sampling_online_simpoint.
# This may be replaced when dependencies are built.

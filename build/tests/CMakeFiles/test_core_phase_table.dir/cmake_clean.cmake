file(REMOVE_RECURSE
  "CMakeFiles/test_core_phase_table.dir/test_core_phase_table.cc.o"
  "CMakeFiles/test_core_phase_table.dir/test_core_phase_table.cc.o.d"
  "test_core_phase_table"
  "test_core_phase_table.pdb"
  "test_core_phase_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_phase_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

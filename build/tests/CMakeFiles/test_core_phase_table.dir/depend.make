# Empty dependencies file for test_core_phase_table.
# This may be replaced when dependencies are built.

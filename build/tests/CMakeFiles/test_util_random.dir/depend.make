# Empty dependencies file for test_util_random.
# This may be replaced when dependencies are built.

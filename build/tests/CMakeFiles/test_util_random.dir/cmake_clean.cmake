file(REMOVE_RECURSE
  "CMakeFiles/test_util_random.dir/test_util_random.cc.o"
  "CMakeFiles/test_util_random.dir/test_util_random.cc.o.d"
  "test_util_random"
  "test_util_random.pdb"
  "test_util_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_util_logging.dir/test_util_logging.cc.o"
  "CMakeFiles/test_util_logging.dir/test_util_logging.cc.o.d"
  "test_util_logging"
  "test_util_logging.pdb"
  "test_util_logging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_util_logging.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_cpu_programs.
# This may be replaced when dependencies are built.

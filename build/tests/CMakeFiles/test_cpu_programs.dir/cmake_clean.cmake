file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_programs.dir/test_cpu_programs.cc.o"
  "CMakeFiles/test_cpu_programs.dir/test_cpu_programs.cc.o.d"
  "test_cpu_programs"
  "test_cpu_programs.pdb"
  "test_cpu_programs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

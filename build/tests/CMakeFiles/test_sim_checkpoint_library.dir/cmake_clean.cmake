file(REMOVE_RECURSE
  "CMakeFiles/test_sim_checkpoint_library.dir/test_sim_checkpoint_library.cc.o"
  "CMakeFiles/test_sim_checkpoint_library.dir/test_sim_checkpoint_library.cc.o.d"
  "test_sim_checkpoint_library"
  "test_sim_checkpoint_library.pdb"
  "test_sim_checkpoint_library[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_checkpoint_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_sim_checkpoint_library.
# This may be replaced when dependencies are built.

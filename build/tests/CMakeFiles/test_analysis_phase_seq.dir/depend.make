# Empty dependencies file for test_analysis_phase_seq.
# This may be replaced when dependencies are built.

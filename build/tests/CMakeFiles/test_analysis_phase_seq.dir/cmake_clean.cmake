file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_phase_seq.dir/test_analysis_phase_seq.cc.o"
  "CMakeFiles/test_analysis_phase_seq.dir/test_analysis_phase_seq.cc.o.d"
  "test_analysis_phase_seq"
  "test_analysis_phase_seq.pdb"
  "test_analysis_phase_seq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_phase_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_util_env.dir/test_util_env.cc.o"
  "CMakeFiles/test_util_env.dir/test_util_env.cc.o.d"
  "test_util_env"
  "test_util_env.pdb"
  "test_util_env[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_util_env.
# This may be replaced when dependencies are built.

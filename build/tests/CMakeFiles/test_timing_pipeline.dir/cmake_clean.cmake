file(REMOVE_RECURSE
  "CMakeFiles/test_timing_pipeline.dir/test_timing_pipeline.cc.o"
  "CMakeFiles/test_timing_pipeline.dir/test_timing_pipeline.cc.o.d"
  "test_timing_pipeline"
  "test_timing_pipeline.pdb"
  "test_timing_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
